package raft

import (
	"math/rand"
	"testing"
)

func TestPersistRestoreRoundTrip(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	if err := l.Propose([]byte("durable-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Propose([]byte("durable-2")); err != nil {
		t.Fatal(err)
	}
	c.run(10)

	ps := l.Persist()
	if ps.Hard.Term != l.Term() {
		t.Fatalf("persisted term %d != %d", ps.Hard.Term, l.Term())
	}
	if ps.Hard.Commit != l.CommitIndex() {
		t.Fatalf("persisted commit %d != %d", ps.Hard.Commit, l.CommitIndex())
	}
	if len(ps.Log) != len(l.Log()) {
		t.Fatal("persisted log length mismatch")
	}

	restored, err := Restore(Config{
		ID: l.ID(), Peers: nil, // ignored: configuration comes from ps
		ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
		Rng: rand.New(rand.NewSource(9)),
	}, ps)
	if err != nil {
		t.Fatal(err)
	}
	if restored.State() != Follower {
		t.Fatalf("restored state = %v, want follower", restored.State())
	}
	if restored.Term() != ps.Hard.Term || restored.CommitIndex() != ps.Hard.Commit {
		t.Fatal("restored hard state mismatch")
	}
	if len(restored.Members()) != 3 {
		t.Fatalf("restored members = %v", restored.Members())
	}
	// The restored log is a deep copy.
	ps.Log[0].Data = []byte("tampered")
	if string(restored.Log()[0].Data) == "tampered" {
		t.Fatal("restore must deep-copy the log")
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	_, err := Restore(Config{
		ID: 1, ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
	}, PersistentState{
		Hard:  HardState{Term: 3, Commit: 5},
		Log:   []Entry{{Index: 1, Term: 1}},
		Peers: []uint64{1, 2, 3},
	})
	if err == nil {
		t.Fatal("want error for commit beyond log")
	}
}

func TestRestartedNodeRejoinsAndCatchesUp(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	if err := l.Propose([]byte("before-crash")); err != nil {
		t.Fatal(err)
	}
	c.run(10)

	// Crash a follower, persist its state at crash time.
	var victim uint64
	for id := range c.nodes {
		if id != l.ID() {
			victim = id
			break
		}
	}
	ps := c.nodes[victim].Persist()
	c.down[victim] = true

	// Commit more entries while the victim is down.
	for i := 0; i < 3; i++ {
		if err := c.leader().Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		c.run(5)
	}

	// Restart the victim from its persisted state.
	restored, err := Restore(Config{
		ID: victim, ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
		Rng: rand.New(rand.NewSource(int64(victim))),
	}, ps)
	if err != nil {
		t.Fatal(err)
	}
	c.nodes[victim] = restored
	c.down[victim] = false
	c.run(50)

	// The rejoined node must have caught up to the leader's log.
	lead := c.leader()
	if restored.CommitIndex() != lead.CommitIndex() {
		t.Fatalf("rejoined commit %d != leader %d", restored.CommitIndex(), lead.CommitIndex())
	}
	if len(restored.Log()) != len(lead.Log()) {
		t.Fatalf("rejoined log %d entries != leader %d", len(restored.Log()), len(lead.Log()))
	}
	// Leadership was not disturbed by the rejoin.
	if lead.ID() != l.ID() {
		t.Fatalf("leadership changed from %d to %d on rejoin", l.ID(), lead.ID())
	}
}

func TestRestartedLeaderDoesNotSplitBrain(t *testing.T) {
	c := newCluster(t, 1, 2, 3, 4, 5)
	l := c.waitLeader(100)
	ps := l.Persist()
	c.down[l.ID()] = true
	nl := c.waitLeader(400)

	restored, err := Restore(Config{
		ID: l.ID(), ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
		Rng: rand.New(rand.NewSource(55)),
	}, ps)
	if err != nil {
		t.Fatal(err)
	}
	c.nodes[l.ID()] = restored
	c.down[l.ID()] = false
	c.run(100)

	// The restarted node restarts as a follower of the new leader; at
	// no point do two leaders share a term (checked by c.leader()).
	if restored.State() == Leader && restored.Term() <= nl.Term() {
		t.Fatal("restarted node reclaimed leadership in an old term")
	}
	if c.leader() == nil {
		t.Fatal("no leader after rejoin")
	}
}
