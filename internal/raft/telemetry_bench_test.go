package raft

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// tickBench is one 5-node leader ready to be driven through tick+Ready
// cycles, as the host loop does.
type tickBench struct {
	n *Node
}

func newTickBench(b *testing.B, reg *telemetry.Registry) *tickBench {
	n, err := NewNode(Config{
		ID: 1, Peers: []uint64{1, 2, 3, 4, 5},
		ElectionTickMin: 1_000_000, ElectionTickMax: 2_000_000, HeartbeatTick: 10,
		Rng:       rand.New(rand.NewSource(1)),
		Telemetry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	n.Campaign()
	for _, p := range []uint64{2, 3} {
		n.Step(Message{Type: MsgVoteResponse, From: p, To: 1, Term: n.Term(), Granted: true})
	}
	n.Ready()
	if n.State() != Leader {
		b.Fatal("setup failed: node is not leader")
	}
	return &tickBench{n: n}
}

// slice runs one timed slice of tick+Ready work (~50µs) and returns its
// duration.
func (t *tickBench) slice(ticks int) time.Duration {
	start := time.Now()
	for j := 0; j < ticks; j++ {
		t.n.Tick()
		t.n.Ready() // drain heartbeats as the host loop does
	}
	return time.Since(start)
}

// benchmarkRaftTick is the telemetry overhead contract for the raft
// tick hot path: `make bench-check` fails if the instrumented tick
// costs more than 5% over the nil registry (cmd/p2pfl-benchjson
// -pairs 'RaftTickLive=RaftTickNil').
//
// Measurement is built for a noisy shared machine. BOTH variants run
// inside each benchmark, interleaved slice by slice, so they see
// identical load; the benchmark reports only its own variant's number,
// and the minimum slice is taken because a ~50µs slice usually fits
// inside one uncontended scheduler quantum — long-rep averages would
// absorb whatever else the CPU was doing.
func benchmarkRaftTick(b *testing.B, live bool) {
	const (
		ticksPerSlice = 500 // ≈ 50µs of tick+Ready work
		slicesPerOp   = 50  // per variant; both variants run every op
	)
	nilBench := newTickBench(b, nil)
	liveBench := newTickBench(b, telemetry.New())
	nilBench.slice(ticksPerSlice * 4) // warm caches so the pair compares steady state
	liveBench.slice(ticksPerSlice * 4)
	b.ReportAllocs()
	b.ResetTimer()
	var bestNil, bestLive time.Duration
	for i := 0; i < b.N; i++ {
		for s := 0; s < slicesPerOp; s++ {
			if d := nilBench.slice(ticksPerSlice); bestNil == 0 || d < bestNil {
				bestNil = d
			}
			if d := liveBench.slice(ticksPerSlice); bestLive == 0 || d < bestLive {
				bestLive = d
			}
		}
	}
	best := bestNil
	if live {
		best = bestLive
	}
	// ns/op = best slice scaled to one variant's share of the op, so the
	// number stays comparable with a plain timed loop.
	b.ReportMetric(float64(best.Nanoseconds())*slicesPerOp, "ns/op")
}

func BenchmarkRaftTickNil(b *testing.B)  { benchmarkRaftTick(b, false) }
func BenchmarkRaftTickLive(b *testing.B) { benchmarkRaftTick(b, true) }
