package raft

import (
	"math/rand"
	"testing"
)

func TestCompactTruncatesLog(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	for i := 0; i < 5; i++ {
		if err := l.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.run(10)
	before := l.lastIndex()
	if err := l.Compact(l.CommitIndex(), []byte("state")); err != nil {
		t.Fatal(err)
	}
	if l.SnapshotIndex() != l.CommitIndex() {
		t.Fatalf("snapshot index = %d, want %d", l.SnapshotIndex(), l.CommitIndex())
	}
	if l.lastIndex() != before {
		t.Fatal("compaction must not change lastIndex")
	}
	if len(l.Log()) != int(before-l.SnapshotIndex()) {
		t.Fatalf("retained %d entries, want %d", len(l.Log()), before-l.SnapshotIndex())
	}
	// Cluster keeps working after compaction.
	if err := l.Propose([]byte("after")); err != nil {
		t.Fatal(err)
	}
	c.run(10)
	if c.leader() == nil {
		t.Fatal("no leader after compaction")
	}
}

func TestCompactValidation(t *testing.T) {
	c := newCluster(t, 1)
	l := c.waitLeader(50)
	if err := l.Propose([]byte("x")); err != nil {
		t.Fatal(err)
	}
	c.run(5)
	if err := l.Compact(l.CommitIndex()+5, nil); err == nil {
		t.Fatal("want error compacting beyond applied")
	}
	if err := l.Compact(l.CommitIndex(), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(l.SnapshotIndex(), nil); err == nil {
		t.Fatal("want error re-compacting the same index")
	}
}

func TestSlowFollowerReceivesSnapshot(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	// Partition one follower.
	var lag uint64
	for id := range c.nodes {
		if id != l.ID() {
			lag = id
			break
		}
	}
	c.down[lag] = true
	for i := 0; i < 6; i++ {
		if err := c.leader().Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		c.run(5)
	}
	// Compact past everything the lagging follower has.
	lead := c.leader()
	if err := lead.Compact(lead.CommitIndex(), []byte("compacted-state")); err != nil {
		t.Fatal(err)
	}
	// Heal the partition: the follower must catch up via InstallSnapshot.
	c.down[lag] = false
	c.run(60)
	follower := c.nodes[lag]
	if follower.CommitIndex() < lead.SnapshotIndex() {
		t.Fatalf("follower commit %d below snapshot %d", follower.CommitIndex(), lead.SnapshotIndex())
	}
	if follower.SnapshotIndex() != lead.SnapshotIndex() {
		t.Fatalf("follower snapshot %d != leader %d", follower.SnapshotIndex(), lead.SnapshotIndex())
	}
	// And it continues to replicate normally afterwards.
	if err := c.leader().Propose([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	c.run(10)
	found := false
	for _, e := range follower.Log() {
		if string(e.Data) == "fresh" {
			found = true
		}
	}
	if !found {
		t.Fatal("follower did not replicate entries after snapshot install")
	}
}

func TestInstalledSnapshotDeliveredViaReady(t *testing.T) {
	// Directly feed a snapshot to a fresh follower and observe Ready.
	n, err := NewNode(Config{
		ID: 2, Peers: []uint64{1, 2, 3},
		ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
		Rng: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Index: 7, Term: 3, Peers: []uint64{1, 2, 3, 4}, Data: []byte("app-state")}
	if err := n.Step(Message{Type: MsgSnapshot, From: 1, To: 2, Term: 3, Snapshot: snap}); err != nil {
		t.Fatal(err)
	}
	rd := n.Ready()
	if rd.InstalledSnapshot == nil || string(rd.InstalledSnapshot.Data) != "app-state" {
		t.Fatalf("snapshot not delivered: %+v", rd.InstalledSnapshot)
	}
	if n.CommitIndex() != 7 || n.SnapshotIndex() != 7 {
		t.Fatalf("commit=%d snap=%d, want 7", n.CommitIndex(), n.SnapshotIndex())
	}
	// Membership came from the snapshot.
	if !n.IsMember(4) {
		t.Fatal("snapshot membership not applied")
	}
	// A stale snapshot is ignored.
	if err := n.Step(Message{Type: MsgSnapshot, From: 1, To: 2, Term: 3, Snapshot: &Snapshot{Index: 3, Term: 2}}); err != nil {
		t.Fatal(err)
	}
	if n.SnapshotIndex() != 7 {
		t.Fatal("stale snapshot overwrote state")
	}
	// A nil snapshot is rejected, not crashed on.
	if err := n.Step(Message{Type: MsgSnapshot, From: 1, To: 2, Term: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestAutoCompaction(t *testing.T) {
	ids := []uint64{1}
	n, err := NewNode(Config{
		ID: 1, Peers: ids,
		ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
		Rng:               rand.New(rand.NewSource(1)),
		SnapshotThreshold: 4,
		SnapshotState:     func() []byte { return []byte("auto") },
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Campaign()
	n.Ready()
	for i := 0; i < 10; i++ {
		if err := n.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		n.Ready()
	}
	if n.SnapshotIndex() == 0 {
		t.Fatal("auto-compaction never triggered")
	}
	if got := len(n.Log()); got > 5 {
		t.Fatalf("log retains %d entries despite threshold 4", got)
	}
	ps := n.Persist()
	if ps.Snapshot == nil || string(ps.Snapshot.Data) != "auto" {
		t.Fatal("snapshot state not captured")
	}
	// Restore round-trips the snapshot.
	restored, err := Restore(Config{
		ID: 1, ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
	}, ps)
	if err != nil {
		t.Fatal(err)
	}
	if restored.SnapshotIndex() != n.SnapshotIndex() {
		t.Fatal("restored snapshot index mismatch")
	}
	if restored.CommitIndex() != n.CommitIndex() {
		t.Fatal("restored commit mismatch")
	}
}

func TestSnapshotWithPersistRestoreAndCatchUp(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	for i := 0; i < 6; i++ {
		if err := l.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.run(10)
	if err := l.Compact(l.CommitIndex(), []byte("s")); err != nil {
		t.Fatal(err)
	}
	ps := l.Persist()
	if ps.Snapshot == nil {
		t.Fatal("snapshot missing from persisted state")
	}
	// Corrupt commit below the snapshot: restore must refuse.
	bad := ps
	bad.Hard.Commit = ps.Snapshot.Index - 1
	if _, err := Restore(Config{ID: 1, ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2}, bad); err == nil {
		t.Fatal("want error for commit below snapshot")
	}
}
