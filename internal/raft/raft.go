// Package raft is a from-scratch implementation of the Raft consensus
// algorithm (Ongaro & Ousterhout, USENIX ATC'14) covering the three
// subproblems the paper relies on: leader election with randomized
// timeouts U(T, 2T), log replication with the consistency check, and the
// safety restrictions (up-to-date-log voting rule, current-term-only
// commit), plus single-server cluster membership change — the mechanism
// by which a newly elected subgroup leader joins the FedAvg layer.
//
// The node is a pure, tick-driven state machine in the style of etcd/raft:
// time advances only through Tick(), inputs arrive only through Step(),
// and outputs (messages to send, newly committed entries, leadership
// changes) are collected through Ready(). This makes the node trivially
// embeddable both in the discrete-event simulator (internal/simnet), where
// one tick is one virtual millisecond, and in a real-time loop driven by a
// time.Ticker (cmd/p2pfl-node).
package raft

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/telemetry"
)

// State is the role of a Raft node (Fig. 2 of the paper).
type State int

const (
	// Follower responds to requests from leaders and candidates.
	Follower State = iota
	// Candidate is campaigning to become leader.
	Candidate
	// Leader handles all client requests and replicates the log.
	Leader
	// PreCandidate is probing for pre-votes before a real campaign
	// (Config.PreVote, §9.6 of Ongaro's thesis): the node's term and
	// vote are untouched until a quorum signals the probe would win.
	PreCandidate
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	case PreCandidate:
		return "pre-candidate"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// None is the nil node ID (no leader known / no vote cast).
const None uint64 = 0

// EntryType distinguishes application data from configuration changes.
type EntryType int

const (
	// EntryNormal carries application data.
	EntryNormal EntryType = iota
	// EntryConfChange carries a JSON-encoded ConfChange.
	EntryConfChange
	// EntryNoop is the empty entry a new leader appends to commit
	// entries from previous terms.
	EntryNoop
)

// Entry is one replicated log entry.
type Entry struct {
	Index uint64
	Term  uint64
	Type  EntryType
	Data  []byte
}

// ConfChange is a single-server membership change.
type ConfChange struct {
	Add    bool   `json:"add"` // true: add node; false: remove node
	NodeID uint64 `json:"node_id"`
}

// Encode serializes the change for an EntryConfChange payload.
func (cc ConfChange) Encode() []byte {
	b, err := json.Marshal(cc)
	if err != nil {
		panic(err) // marshalling two scalar fields cannot fail
	}
	return b
}

// DecodeConfChange parses an EntryConfChange payload.
func DecodeConfChange(data []byte) (ConfChange, error) {
	var cc ConfChange
	if err := json.Unmarshal(data, &cc); err != nil {
		return ConfChange{}, fmt.Errorf("raft: bad conf change: %w", err)
	}
	return cc, nil
}

// MsgType enumerates the Raft RPCs.
type MsgType int

const (
	// MsgVoteRequest is the RequestVote RPC.
	MsgVoteRequest MsgType = iota
	// MsgVoteResponse answers a RequestVote RPC.
	MsgVoteResponse
	// MsgAppend is the AppendEntries RPC (also the heartbeat).
	MsgAppend
	// MsgAppendResponse answers an AppendEntries RPC.
	MsgAppendResponse
	// MsgSnapshot is the InstallSnapshot RPC, sent when a follower's
	// next index has been compacted away (answered with MsgAppendResponse).
	MsgSnapshot
	// MsgPreVoteRequest probes whether a real RequestVote at Term (the
	// sender's term + 1) would win, without anyone changing state.
	MsgPreVoteRequest
	// MsgPreVoteResponse answers a pre-vote probe: Granted echoes the
	// probed term, a rejection carries the responder's current term.
	MsgPreVoteResponse
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgVoteRequest:
		return "RequestVote"
	case MsgVoteResponse:
		return "RequestVoteResp"
	case MsgAppend:
		return "AppendEntries"
	case MsgAppendResponse:
		return "AppendEntriesResp"
	case MsgSnapshot:
		return "InstallSnapshot"
	case MsgPreVoteRequest:
		return "PreVote"
	case MsgPreVoteResponse:
		return "PreVoteResp"
	default:
		return fmt.Sprintf("msg(%d)", int(t))
	}
}

// Message is one Raft RPC or response.
type Message struct {
	Type MsgType
	From uint64
	To   uint64
	Term uint64

	// MsgVoteRequest: candidate's log position (the voting restriction).
	LastLogIndex uint64
	LastLogTerm  uint64
	// MsgVoteResponse.
	Granted bool
	// MsgAppend.
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []Entry
	Commit       uint64
	// MsgAppendResponse.
	Reject bool
	// Match carries the follower's last replicated index on success, or a
	// next-index hint on rejection.
	Match uint64
	// MsgSnapshot.
	Snapshot *Snapshot
}

// Snapshot is a compacted prefix of the log: everything up to and
// including Index is replaced by the application state in Data plus the
// membership in Peers. Followers that have fallen behind the compaction
// point receive it via the InstallSnapshot RPC.
type Snapshot struct {
	Index uint64
	Term  uint64
	Peers []uint64
	// Data is the opaque application state at Index (whatever the state
	// machine's SnapshotState callback captured).
	Data []byte
}

// Config parameterizes a node.
type Config struct {
	// ID is this node's non-zero identifier.
	ID uint64
	// Peers is the initial cluster membership, including ID. A joining
	// node that is not yet a member passes the current members without
	// its own ID and learns of its own addition through a ConfChange.
	Peers []uint64
	// ElectionTickMin/Max bound the randomized election timeout, in
	// ticks: each timer reset samples uniformly from [Min, Max). The
	// paper uses U(T, 2T), i.e. Min = T, Max = 2T.
	ElectionTickMin int
	ElectionTickMax int
	// HeartbeatTick is the leader's heartbeat interval in ticks.
	HeartbeatTick int
	// Rng drives timeout randomization; nil seeds from ID.
	Rng *rand.Rand

	// PreVote enables the Pre-Vote extension: a node whose election
	// timer fires probes the group with MsgPreVoteRequest first and only
	// increments its term once a quorum signals the real election would
	// win. This stops a partitioned minority (or a node behind flaky WAN
	// links) from endlessly bumping terms and deposing a healthy leader
	// on rejoin. Off by default: existing seeds replay unchanged.
	PreVote bool
	// CheckQuorum makes a leader step down after a full ElectionTickMax
	// of ticks without hearing AppendEntries responses from a quorum —
	// a leader on the minority side of a partition stops disrupting the
	// group (and stops serving lease reads) instead of lingering. Off by
	// default.
	CheckQuorum bool
	// LeaderLease enables lease-based ReadIndex reads: a leader that has
	// heard from a quorum within the last ElectionTickMin ticks may
	// serve linearizable reads at its commit index without a heartbeat
	// round (see ReadIndex). Off by default.
	LeaderLease bool

	// SnapshotThreshold, when positive, auto-compacts the log once more
	// than this many applied entries have accumulated since the last
	// snapshot. SnapshotState, if set, captures the application state
	// stored in the snapshot (nil data otherwise).
	SnapshotThreshold int
	SnapshotState     func() []byte

	// Telemetry, when non-nil, receives raft/* counters and trace
	// events. Message counts are batched into Ready() so the tick/step
	// hot path stays free of per-message atomics.
	Telemetry *telemetry.Registry
}

func (c *Config) validate() error {
	if c.ID == None {
		return fmt.Errorf("raft: node ID must be non-zero")
	}
	if c.ElectionTickMin <= 0 || c.ElectionTickMax <= c.ElectionTickMin {
		return fmt.Errorf("raft: election ticks [%d,%d) invalid", c.ElectionTickMin, c.ElectionTickMax)
	}
	if c.HeartbeatTick <= 0 {
		return fmt.Errorf("raft: heartbeat tick %d invalid", c.HeartbeatTick)
	}
	if c.HeartbeatTick >= c.ElectionTickMin {
		return fmt.Errorf("raft: heartbeat tick %d must be < election tick min %d", c.HeartbeatTick, c.ElectionTickMin)
	}
	return nil
}

// Ready is the batch of outputs drained from a node after Tick/Step.
type Ready struct {
	// Messages must be sent to their destinations.
	Messages []Message
	// Committed are newly committed entries, in order, to apply to the
	// state machine. Conf changes have already been applied to the
	// node's own membership view.
	Committed []Entry
	// InstalledSnapshot, when non-nil, replaces the state machine: the
	// application must restore itself from its Data before applying
	// Committed (which only holds entries after the snapshot).
	InstalledSnapshot *Snapshot
	// State/Term/Leader snapshot the node after the batch.
	State  State
	Term   uint64
	Leader uint64
}

// Node is a single Raft participant.
type Node struct {
	id    uint64
	state State

	term     uint64
	votedFor uint64
	leader   uint64

	// log holds entries after the snapshot point: log[i] has raft index
	// snapIndex+i+1.
	log         []Entry
	snapIndex   uint64
	snapTerm    uint64
	snapshot    *Snapshot // latest snapshot (nil before any compaction)
	pendingSnap *Snapshot // installed snapshot awaiting Ready delivery
	commitIndex uint64
	applied     uint64

	peers map[uint64]bool // current configuration (voting members)

	// Candidate state (also holds pre-votes while PreCandidate).
	votes map[uint64]bool

	// Leader state.
	nextIndex  map[uint64]uint64
	matchIndex map[uint64]uint64

	// Check-quorum / lease state: peers heard from since the last
	// quorum renewal, and ticks since that renewal.
	active        map[uint64]bool
	quorumSilence int

	// Timers (in ticks).
	electionElapsed  int
	heartbeatElapsed int
	electionTimeout  int

	cfg Config
	rng *rand.Rand
	tel nodeTel

	msgs []Message
}

// nodeTel holds the node's pre-resolved metric handles. With no
// registry configured every handle is nil and updates are no-ops, so
// call sites stay unconditional.
type nodeTel struct {
	reg                *telemetry.Registry
	electionsStarted   *telemetry.Counter
	electionsWon       *telemetry.Counter
	termsAdvanced      *telemetry.Counter
	entriesAppended    *telemetry.Counter
	entriesCommitted   *telemetry.Counter
	snapshotsTaken     *telemetry.Counter
	snapshotsInstalled *telemetry.Counter
	msgsSent           *telemetry.Counter

	// WAN-profile handles, resolved only when the matching Config flag
	// is on so flag-off registries keep their exact metric set (the
	// equal-seed snapshot and golden-file contract).
	prevotesStarted *telemetry.Counter
	quorumStepdowns *telemetry.Counter
	leaseReads      *telemetry.Counter
}

func newNodeTel(reg *telemetry.Registry) nodeTel {
	return nodeTel{
		reg:                reg,
		electionsStarted:   reg.Counter("raft/elections_started"),
		electionsWon:       reg.Counter("raft/elections_won"),
		termsAdvanced:      reg.Counter("raft/terms_advanced"),
		entriesAppended:    reg.Counter("raft/entries_appended"),
		entriesCommitted:   reg.Counter("raft/entries_committed"),
		snapshotsTaken:     reg.Counter("raft/snapshots_taken"),
		snapshotsInstalled: reg.Counter("raft/snapshots_installed"),
		msgsSent:           reg.Counter("raft/msgs_sent"),
	}
}

// NewNode creates a node from cfg.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(int64(cfg.ID)))
	}
	n := &Node{
		id:         cfg.ID,
		state:      Follower,
		votedFor:   None,
		leader:     None,
		peers:      make(map[uint64]bool),
		nextIndex:  make(map[uint64]uint64),
		matchIndex: make(map[uint64]uint64),
		cfg:        cfg,
		rng:        rng,
		tel:        newNodeTel(cfg.Telemetry),
	}
	if cfg.PreVote {
		n.tel.prevotesStarted = cfg.Telemetry.Counter("raft/prevotes_started")
	}
	if cfg.CheckQuorum {
		n.tel.quorumStepdowns = cfg.Telemetry.Counter("raft/quorum_stepdowns")
	}
	if cfg.LeaderLease {
		n.tel.leaseReads = cfg.Telemetry.Counter("raft/lease_reads")
	}
	for _, p := range cfg.Peers {
		if p == None {
			return nil, fmt.Errorf("raft: peer ID must be non-zero")
		}
		n.peers[p] = true
	}
	n.resetElectionTimeout()
	return n, nil
}

// ID returns the node's identifier.
func (n *Node) ID() uint64 { return n.id }

// State returns the node's current role.
func (n *Node) State() State { return n.state }

// Term returns the node's current term.
func (n *Node) Term() uint64 { return n.term }

// Leader returns the node's view of the current leader (None if unknown).
func (n *Node) Leader() uint64 { return n.leader }

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 { return n.commitIndex }

// Members returns the current configuration, sorted.
func (n *Node) Members() []uint64 {
	out := make([]uint64, 0, len(n.peers))
	for p := range n.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsMember reports whether id is in the current configuration.
func (n *Node) IsMember(id uint64) bool { return n.peers[id] }

// LastIndex returns the index of the last entry in the log (including
// the compacted prefix) — exposed for invariant probes (internal/chaos).
func (n *Node) LastIndex() uint64 { return n.lastIndex() }

func (n *Node) lastIndex() uint64 { return n.snapIndex + uint64(len(n.log)) }

func (n *Node) termAt(i uint64) uint64 {
	if i == n.snapIndex {
		return n.snapTerm
	}
	if i <= n.snapIndex || i > n.lastIndex() {
		return 0
	}
	return n.log[i-n.snapIndex-1].Term
}

func (n *Node) entryAt(i uint64) Entry { return n.log[i-n.snapIndex-1] }

func (n *Node) resetElectionTimeout() {
	span := n.cfg.ElectionTickMax - n.cfg.ElectionTickMin
	n.electionTimeout = n.cfg.ElectionTickMin + n.rng.Intn(span)
	n.electionElapsed = 0
}

func (n *Node) quorum() int { return len(n.peers)/2 + 1 }

// Tick advances the node's logical clock by one tick (the caller defines
// the tick duration; the experiments use 1 ms).
func (n *Node) Tick() {
	if n.state == Leader {
		n.heartbeatElapsed++
		if n.cfg.CheckQuorum || n.cfg.LeaderLease {
			n.quorumSilence++
			if n.cfg.CheckQuorum && n.quorumSilence >= n.cfg.ElectionTickMax {
				// A full maximum election timeout without hearing a
				// quorum: any majority partition has had time to elect a
				// replacement, so this leadership is (at best) stale.
				n.tel.quorumStepdowns.Inc()
				n.tel.reg.Trace("raft/quorum_stepdown", n.id, -1, telemetry.F("term", int64(n.term)))
				n.becomeFollower(n.term, None)
				return
			}
		}
		if n.heartbeatElapsed >= n.cfg.HeartbeatTick {
			n.heartbeatElapsed = 0
			n.broadcastAppend()
		}
		return
	}
	n.electionElapsed++
	if n.electionElapsed >= n.electionTimeout {
		n.hup()
	}
}

// Campaign forces an immediate election, bypassing pre-vote (used by
// tests, bootstrap helpers and proactive failure-detector campaigns;
// normal operation goes through the election timeout and hup).
func (n *Node) Campaign() { n.campaign() }

// hup is the election-timeout path: straight to a real campaign, or
// through a pre-vote probe when Config.PreVote is set.
func (n *Node) hup() {
	if n.cfg.PreVote {
		n.preCampaign()
		return
	}
	n.campaign()
}

// preCampaign probes the group for pre-votes at term+1 without touching
// the node's own term or vote. Only a quorum of grants escalates to a
// real campaign — a node that cannot reach a quorum (partitioned
// minority, flaky WAN link) keeps probing harmlessly at its own term.
func (n *Node) preCampaign() {
	if !n.peers[n.id] {
		// Not (yet) a voting member: keep waiting (see campaign).
		n.resetElectionTimeout()
		return
	}
	n.state = PreCandidate
	n.leader = None
	n.votes = map[uint64]bool{n.id: true}
	n.resetElectionTimeout()
	n.tel.prevotesStarted.Inc()
	n.tel.reg.Trace("raft/prevote_started", n.id, -1, telemetry.F("term", int64(n.term+1)))
	if len(n.votes) >= n.quorum() {
		// Single-node cluster: the probe trivially wins.
		n.campaign()
		return
	}
	// Sorted iteration keeps emission order deterministic (see campaign).
	for _, p := range n.Members() {
		if p == n.id {
			continue
		}
		n.send(Message{
			Type:         MsgPreVoteRequest,
			To:           p,
			Term:         n.term + 1,
			LastLogIndex: n.lastIndex(),
			LastLogTerm:  n.termAt(n.lastIndex()),
		})
	}
}

func (n *Node) campaign() {
	if !n.peers[n.id] {
		// Not (yet) a voting member: keep waiting. A joining node must
		// not disrupt the group it wants to join.
		n.resetElectionTimeout()
		return
	}
	n.state = Candidate
	n.term++
	n.votedFor = n.id
	n.leader = None
	n.votes = map[uint64]bool{n.id: true}
	n.resetElectionTimeout()
	n.tel.electionsStarted.Inc()
	n.tel.termsAdvanced.Inc()
	n.tel.reg.Trace("raft/election_started", n.id, -1, telemetry.F("term", int64(n.term)))
	if len(n.votes) >= n.quorum() {
		// Single-node cluster.
		n.becomeLeader()
		return
	}
	// Iterate in sorted order so the emitted message order is identical
	// across runs — the discrete-event simulator delivers same-time events
	// in schedule order, and deterministic replay (internal/chaos) needs
	// byte-for-byte identical runs from identical seeds.
	for _, p := range n.Members() {
		if p == n.id {
			continue
		}
		n.send(Message{
			Type:         MsgVoteRequest,
			To:           p,
			Term:         n.term,
			LastLogIndex: n.lastIndex(),
			LastLogTerm:  n.termAt(n.lastIndex()),
		})
	}
}

func (n *Node) becomeFollower(term, leader uint64) {
	n.state = Follower
	if term > n.term {
		n.term = term
		n.votedFor = None
		n.tel.termsAdvanced.Inc()
	}
	n.leader = leader
	n.votes = nil
	n.active = nil
	n.quorumSilence = 0
	n.resetElectionTimeout()
}

func (n *Node) becomeLeader() {
	n.state = Leader
	n.leader = n.id
	n.heartbeatElapsed = 0
	n.nextIndex = make(map[uint64]uint64)
	n.matchIndex = make(map[uint64]uint64)
	for p := range n.peers {
		n.nextIndex[p] = n.lastIndex() + 1
		n.matchIndex[p] = 0
	}
	n.matchIndex[n.id] = n.lastIndex()
	if n.cfg.CheckQuorum || n.cfg.LeaderLease {
		// A fresh leader starts with a full lease: it just heard from a
		// quorum of voters.
		n.active = make(map[uint64]bool)
		n.quorumSilence = 0
	}
	n.tel.electionsWon.Inc()
	n.tel.reg.Trace("raft/leader_elected", n.id, -1, telemetry.F("term", int64(n.term)))
	// Append a no-op so entries from previous terms commit (Sec. 5.4.2 of
	// the Raft paper; Sec. III-C3 of the reproduced paper).
	n.appendEntry(Entry{Type: EntryNoop})
	n.broadcastAppend()
}

func (n *Node) appendEntry(e Entry) {
	e.Index = n.lastIndex() + 1
	e.Term = n.term
	n.log = append(n.log, e)
	n.tel.entriesAppended.Inc()
	n.matchIndex[n.id] = n.lastIndex()
	n.maybeCommit()
}

// Propose appends a client command to the leader's log. ErrNotLeader is
// returned on non-leaders; the caller should redirect to Leader().
func (n *Node) Propose(data []byte) error {
	if n.state != Leader {
		return ErrNotLeader
	}
	n.appendEntry(Entry{Type: EntryNormal, Data: data})
	n.broadcastAppend()
	return nil
}

// ProposeConfChange appends a single-server membership change.
func (n *Node) ProposeConfChange(cc ConfChange) error {
	if n.state != Leader {
		return ErrNotLeader
	}
	if cc.NodeID == None {
		return fmt.Errorf("raft: conf change with zero node ID")
	}
	n.appendEntry(Entry{Type: EntryConfChange, Data: cc.Encode()})
	n.broadcastAppend()
	return nil
}

// ErrNotLeader is returned by proposals on non-leader nodes.
var ErrNotLeader = fmt.Errorf("raft: not the leader")

// ErrNoLease is returned by ReadIndex when the leader's lease has
// expired: too long since a quorum acknowledged it, so a newer leader
// may exist and a local read could be stale.
var ErrNoLease = fmt.Errorf("raft: leader lease expired")

// ErrReadIndexNotReady is returned by ReadIndex before the leader has
// committed an entry from its own term (until the no-op commits, the
// commit index may still move backward relative to a newer leader's log).
var ErrReadIndexNotReady = fmt.Errorf("raft: no current-term entry committed yet")

// ReadIndex returns an index at which a local read of the applied state
// is linearizable, without a heartbeat round trip. Requires
// Config.LeaderLease. The lease argument: a quorum acknowledged this
// leader within the last ElectionTickMin ticks, and no other node can
// win an election without first refusing heartbeats for at least
// ElectionTickMin ticks, so no newer leader can have committed anything
// yet. This assumes bounded clock (tick-rate) drift between nodes —
// the standard lease caveat; callers that cannot accept it should use
// the heartbeat-round ReadIndex variant instead (not needed here: the
// simulated fleet ticks in lockstep).
func (n *Node) ReadIndex() (uint64, error) {
	if n.state != Leader {
		return 0, ErrNotLeader
	}
	if !n.cfg.LeaderLease {
		return 0, fmt.Errorf("raft: ReadIndex requires Config.LeaderLease")
	}
	if n.quorumSilence >= n.cfg.ElectionTickMin {
		return 0, ErrNoLease
	}
	// Leader Completeness makes the read safe only once an entry from
	// *this* term is committed (Raft §8; the no-op from becomeLeader).
	if n.termAt(n.commitIndex) != n.term {
		return 0, ErrReadIndexNotReady
	}
	n.tel.leaseReads.Inc()
	return n.commitIndex, nil
}

// Applied returns the highest log index the driver has drained through
// Ready() — the index a ReadIndex caller must wait for its state
// machine to reach before serving the read.
func (n *Node) Applied() uint64 { return n.applied }

// ElectionTicks returns the current [min, max) election timeout band.
func (n *Node) ElectionTicks() (min, max int) {
	return n.cfg.ElectionTickMin, n.cfg.ElectionTickMax
}

// SetElectionTicks retunes the election timeout band at runtime (the
// self-tuning feedback loop from internal/health RTT quantiles). The
// currently armed timeout is rescaled proportionally into the new band
// — no rng draw, so retuning never perturbs the deterministic-replay
// rng stream. Heartbeat and snapshot config are untouched.
func (n *Node) SetElectionTicks(min, max int) error {
	if min <= n.cfg.HeartbeatTick {
		return fmt.Errorf("raft: election tick min %d must be > heartbeat tick %d", min, n.cfg.HeartbeatTick)
	}
	if max <= min {
		return fmt.Errorf("raft: election ticks [%d,%d) invalid", min, max)
	}
	if min == n.cfg.ElectionTickMin && max == n.cfg.ElectionTickMax {
		return nil
	}
	oldMin, oldSpan := n.cfg.ElectionTickMin, n.cfg.ElectionTickMax-n.cfg.ElectionTickMin
	frac := n.electionTimeout - oldMin
	if frac < 0 {
		frac = 0
	}
	n.cfg.ElectionTickMin, n.cfg.ElectionTickMax = min, max
	n.electionTimeout = min + frac*(max-min)/oldSpan
	if n.electionTimeout >= max {
		n.electionTimeout = max - 1
	}
	return nil
}

func (n *Node) send(m Message) {
	m.From = n.id
	n.msgs = append(n.msgs, m)
}

func (n *Node) broadcastAppend() {
	// Sorted iteration keeps emission order deterministic (see campaign).
	for _, p := range n.Members() {
		if p == n.id {
			continue
		}
		n.sendAppend(p)
	}
}

func (n *Node) sendAppend(to uint64) {
	next := n.nextIndex[to]
	if next == 0 {
		next = 1
	}
	if next <= n.snapIndex {
		// The follower needs entries that were compacted away: ship the
		// snapshot instead (InstallSnapshot RPC).
		n.send(Message{Type: MsgSnapshot, To: to, Term: n.term, Snapshot: n.snapshot})
		return
	}
	prev := next - 1
	var entries []Entry
	if next <= n.lastIndex() {
		entries = append(entries, n.log[next-n.snapIndex-1:]...)
	}
	n.send(Message{
		Type:         MsgAppend,
		To:           to,
		Term:         n.term,
		PrevLogIndex: prev,
		PrevLogTerm:  n.termAt(prev),
		Entries:      entries,
		Commit:       n.commitIndex,
	})
}

// Step feeds one inbound message into the state machine.
func (n *Node) Step(m Message) error {
	if m.Term > n.term {
		// Newer term always demotes — except for the pre-vote exchange,
		// whose whole point is to probe future terms without moving
		// anyone's term. A pre-vote request carries the prober's term+1
		// but changes no state here; a granted pre-vote response echoes
		// the probed term back without establishing it. Only a *rejected*
		// pre-vote response with a higher term is real evidence of a
		// newer epoch (the responder told us its actual term).
		switch {
		case m.Type == MsgPreVoteRequest:
			// Answered at our own term; see handlePreVoteRequest.
		case m.Type == MsgPreVoteResponse && m.Granted:
			// Echo of our own probe at term+1; see handlePreVoteResponse.
		default:
			// For append RPCs the sender is the leader of that term; vote
			// requests leave the leader unknown.
			leader := None
			if m.Type == MsgAppend {
				leader = m.From
			}
			n.becomeFollower(m.Term, leader)
		}
	}
	switch m.Type {
	case MsgVoteRequest:
		n.handleVoteRequest(m)
	case MsgVoteResponse:
		n.handleVoteResponse(m)
	case MsgAppend:
		n.handleAppend(m)
	case MsgAppendResponse:
		n.handleAppendResponse(m)
	case MsgSnapshot:
		n.handleSnapshot(m)
	case MsgPreVoteRequest:
		n.handlePreVoteRequest(m)
	case MsgPreVoteResponse:
		n.handlePreVoteResponse(m)
	default:
		return fmt.Errorf("raft: unknown message type %v", m.Type)
	}
	return nil
}

// handlePreVoteRequest answers a pre-vote probe without changing any
// local state. The grant rule is the RequestVote rule plus leader
// stickiness: while we believe a leader exists and our own election
// timer has not expired, the probe is refused — a healthy leader must
// not be deposed by a rejoining minority node's backlog of timeouts.
func (n *Node) handlePreVoteRequest(m Message) {
	granted := m.Term >= n.term &&
		n.state != Leader &&
		(n.leader == None || n.electionElapsed >= n.cfg.ElectionTickMin) &&
		n.logUpToDate(m.LastLogIndex, m.LastLogTerm)
	if granted {
		// Echo the probed term so the prober can match responses to the
		// campaign it is considering. Nothing is persisted: unlike a real
		// vote, a pre-vote is not a promise.
		n.send(Message{Type: MsgPreVoteResponse, To: m.From, Term: m.Term, Granted: true})
		return
	}
	n.send(Message{Type: MsgPreVoteResponse, To: m.From, Term: n.term, Granted: false})
}

// handlePreVoteResponse collects grants; a quorum escalates to a real
// campaign (which bumps the term exactly once, for the whole probe round).
func (n *Node) handlePreVoteResponse(m Message) {
	if n.state != PreCandidate {
		return
	}
	if !m.Granted {
		// Step's guard already demoted us on a rejection from a newer
		// term; a same/older-term rejection just means no grant.
		return
	}
	if m.Term != n.term+1 {
		return // stale echo from an earlier probe round
	}
	if n.peers[m.From] {
		n.votes[m.From] = true
		if len(n.votes) >= n.quorum() {
			n.campaign()
		}
	}
}

// noteActive records quorum contact for check-quorum and the leader
// lease: once a majority of peers (counting the leader itself) has
// responded since the last renewal, the silence clock restarts.
func (n *Node) noteActive(from uint64) {
	if n.state != Leader || (!n.cfg.CheckQuorum && !n.cfg.LeaderLease) {
		return
	}
	if !n.peers[from] {
		return
	}
	n.active[from] = true
	count := 1 // self
	for p := range n.active {
		if p != n.id {
			count++
		}
	}
	if count >= n.quorum() {
		n.quorumSilence = 0
		clear(n.active)
	}
}

func (n *Node) handleVoteRequest(m Message) {
	granted := false
	if m.Term == n.term && (n.votedFor == None || n.votedFor == m.From) && n.logUpToDate(m.LastLogIndex, m.LastLogTerm) {
		granted = true
		n.votedFor = m.From
		n.resetElectionTimeout()
	}
	n.send(Message{Type: MsgVoteResponse, To: m.From, Term: n.term, Granted: granted})
}

// logUpToDate implements the election restriction: the candidate's log is
// at least as up-to-date as the voter's (Sec. 5.4.1).
func (n *Node) logUpToDate(lastIndex, lastTerm uint64) bool {
	myTerm := n.termAt(n.lastIndex())
	if lastTerm != myTerm {
		return lastTerm > myTerm
	}
	return lastIndex >= n.lastIndex()
}

func (n *Node) handleVoteResponse(m Message) {
	if n.state != Candidate || m.Term != n.term {
		return
	}
	if m.Granted && n.peers[m.From] {
		n.votes[m.From] = true
		if len(n.votes) >= n.quorum() {
			n.becomeLeader()
		}
	}
}

func (n *Node) handleAppend(m Message) {
	if m.Term < n.term {
		n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Reject: true})
		return
	}
	// Valid leader for our term.
	if n.state != Follower || n.leader != m.From {
		n.becomeFollower(m.Term, m.From)
	} else {
		n.resetElectionTimeout()
	}
	// Consistency check. A prev point inside our compacted prefix is
	// fine by definition (committed entries never diverge) but we can
	// only resume from the snapshot index.
	if m.PrevLogIndex < n.snapIndex {
		n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Reject: true, Match: n.snapIndex})
		return
	}
	if m.PrevLogIndex > n.lastIndex() || n.termAt(m.PrevLogIndex) != m.PrevLogTerm {
		hint := n.lastIndex()
		if m.PrevLogIndex < hint {
			hint = m.PrevLogIndex
		}
		if hint > 0 {
			hint--
		}
		if hint < n.snapIndex {
			hint = n.snapIndex
		}
		n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Reject: true, Match: hint})
		return
	}
	// Append, truncating conflicts (same index, different term).
	appended := int64(0)
	for _, e := range m.Entries {
		switch {
		case e.Index <= n.snapIndex:
			// Already compacted: committed entries never conflict.
		case e.Index <= n.lastIndex() && n.termAt(e.Index) == e.Term:
			// Already have it.
		case e.Index <= n.lastIndex():
			// Conflict: truncate and append.
			n.log = n.log[:e.Index-n.snapIndex-1]
			n.log = append(n.log, e)
			appended++
		default:
			n.log = append(n.log, e)
			appended++
		}
	}
	if appended > 0 {
		n.tel.entriesAppended.Add(appended)
	}
	// Advance commit index.
	last := m.PrevLogIndex + uint64(len(m.Entries))
	if m.Commit > n.commitIndex {
		c := m.Commit
		if last < c {
			c = last
		}
		if c > n.commitIndex {
			n.commitIndex = c
		}
	}
	n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Match: last})
}

func (n *Node) handleAppendResponse(m Message) {
	if n.state != Leader || m.Term != n.term {
		return
	}
	// Even a rejection proves the follower is alive and acknowledges our
	// term — that is all check-quorum and the lease need.
	n.noteActive(m.From)
	if m.Reject {
		// Back up using the follower's hint and retry.
		next := m.Match + 1
		if next < 1 {
			next = 1
		}
		if next < n.nextIndex[m.From] {
			n.nextIndex[m.From] = next
		} else if n.nextIndex[m.From] > 1 {
			n.nextIndex[m.From]--
		}
		n.sendAppend(m.From)
		return
	}
	if m.Match > n.matchIndex[m.From] {
		n.matchIndex[m.From] = m.Match
	}
	if n.nextIndex[m.From] < m.Match+1 {
		n.nextIndex[m.From] = m.Match + 1
	}
	n.maybeCommit()
	// Keep pushing if the follower is still behind.
	if n.nextIndex[m.From] <= n.lastIndex() {
		n.sendAppend(m.From)
	}
}

// handleSnapshot installs a leader's snapshot (InstallSnapshot RPC).
func (n *Node) handleSnapshot(m Message) {
	if m.Term < n.term || m.Snapshot == nil {
		n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Reject: true})
		return
	}
	if n.state != Follower || n.leader != m.From {
		n.becomeFollower(m.Term, m.From)
	} else {
		n.resetElectionTimeout()
	}
	s := m.Snapshot
	if s.Index <= n.commitIndex {
		// Stale snapshot: we already have everything in it.
		n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Match: n.commitIndex})
		return
	}
	snap := &Snapshot{Index: s.Index, Term: s.Term, Peers: append([]uint64(nil), s.Peers...), Data: append([]byte(nil), s.Data...)}
	n.snapIndex, n.snapTerm = snap.Index, snap.Term
	n.snapshot = snap
	n.pendingSnap = snap
	n.log = nil
	n.commitIndex = snap.Index
	n.applied = snap.Index
	n.peers = make(map[uint64]bool, len(snap.Peers))
	for _, p := range snap.Peers {
		n.peers[p] = true
	}
	n.tel.snapshotsInstalled.Inc()
	n.tel.reg.Trace("raft/snapshot_installed", n.id, -1, telemetry.F("index", int64(snap.Index)))
	n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Match: snap.Index})
}

// Compact discards the log up to and including index (which must be
// applied), recording a snapshot with the given application state. The
// paper's two-layer system commits FedAvg-layer configurations
// periodically and forever, so unbounded logs are compacted this way.
func (n *Node) Compact(index uint64, data []byte) error {
	if index <= n.snapIndex {
		return fmt.Errorf("raft: index %d already compacted (snapshot at %d)", index, n.snapIndex)
	}
	if index > n.applied {
		return fmt.Errorf("raft: cannot compact unapplied index %d (applied %d)", index, n.applied)
	}
	term := n.termAt(index)
	tail := make([]Entry, n.lastIndex()-index)
	copy(tail, n.log[index-n.snapIndex-1+1:])
	n.log = tail
	n.snapIndex, n.snapTerm = index, term
	n.snapshot = &Snapshot{Index: index, Term: term, Peers: n.Members(), Data: append([]byte(nil), data...)}
	n.tel.snapshotsTaken.Inc()
	return nil
}

// SnapshotIndex returns the current compaction point (0 if none).
func (n *Node) SnapshotIndex() uint64 { return n.snapIndex }

// maybeCommit advances commitIndex to the highest index replicated on a
// quorum whose entry is from the current term (the Sec. 5.4.2 rule).
func (n *Node) maybeCommit() {
	if n.state != Leader {
		return
	}
	for idx := n.lastIndex(); idx > n.commitIndex; idx-- {
		if n.termAt(idx) != n.term {
			break
		}
		count := 0
		for p := range n.peers {
			if p == n.id {
				if n.lastIndex() >= idx {
					count++
				}
				continue
			}
			if n.matchIndex[p] >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			n.commitIndex = idx
			break
		}
	}
}

// Ready drains the node's pending outputs: outbound messages and newly
// committed entries (with conf changes applied to the membership view).
func (n *Node) Ready() Ready {
	// Auto-compaction runs before draining newly committed entries, so it
	// only ever covers entries handed to the driver in earlier batches —
	// which the driver has already applied to the state machine. Running
	// it after the drain would stamp the snapshot with the new applied
	// index while SnapshotState() still reflects the pre-batch state, and
	// a follower installed from that snapshot would silently lose the
	// batch.
	if n.cfg.SnapshotThreshold > 0 && n.applied-n.snapIndex > uint64(n.cfg.SnapshotThreshold) {
		var data []byte
		if n.cfg.SnapshotState != nil {
			data = n.cfg.SnapshotState()
		}
		// Compact cannot fail here: applied > snapIndex is guaranteed.
		_ = n.Compact(n.applied, data)
	}
	rd := Ready{State: n.state, Term: n.term, Leader: n.leader}
	rd.Messages = n.msgs
	n.msgs = nil
	if len(rd.Messages) > 0 {
		n.tel.msgsSent.Add(int64(len(rd.Messages)))
	}
	if n.pendingSnap != nil {
		rd.InstalledSnapshot = n.pendingSnap
		n.pendingSnap = nil
	}
	for n.applied < n.commitIndex {
		n.applied++
		e := n.entryAt(n.applied)
		if e.Type == EntryConfChange {
			if cc, err := DecodeConfChange(e.Data); err == nil {
				n.applyConfChange(cc)
			}
		}
		rd.Committed = append(rd.Committed, e)
	}
	if len(rd.Committed) > 0 {
		n.tel.entriesCommitted.Add(int64(len(rd.Committed)))
	}
	return rd
}

func (n *Node) applyConfChange(cc ConfChange) {
	if cc.Add {
		if !n.peers[cc.NodeID] {
			n.peers[cc.NodeID] = true
			if n.state == Leader {
				n.nextIndex[cc.NodeID] = n.lastIndex() + 1
				n.matchIndex[cc.NodeID] = 0
				n.sendAppend(cc.NodeID)
			}
		}
		return
	}
	delete(n.peers, cc.NodeID)
	if cc.NodeID == n.id && n.state == Leader {
		// A leader that applies its own removal steps down; otherwise
		// its heartbeats would suppress elections among the remaining
		// members forever.
		n.becomeFollower(n.term, None)
		return
	}
	if n.state == Leader {
		delete(n.nextIndex, cc.NodeID)
		delete(n.matchIndex, cc.NodeID)
		n.maybeCommit() // quorum may have shrunk
	}
}

// Status is a point-in-time diagnostic snapshot of a node.
type Status struct {
	ID            uint64
	State         State
	Term          uint64
	Leader        uint64
	CommitIndex   uint64
	Applied       uint64
	LastIndex     uint64
	SnapshotIndex uint64
	Members       []uint64
}

// Status returns the node's current diagnostic snapshot.
func (n *Node) Status() Status {
	return Status{
		ID:            n.id,
		State:         n.state,
		Term:          n.term,
		Leader:        n.leader,
		CommitIndex:   n.commitIndex,
		Applied:       n.applied,
		LastIndex:     n.lastIndex(),
		SnapshotIndex: n.snapIndex,
		Members:       n.Members(),
	}
}

// String implements fmt.Stringer for log lines.
func (s Status) String() string {
	return fmt.Sprintf("node %d: %s term=%d leader=%d commit=%d applied=%d last=%d snap=%d members=%v",
		s.ID, s.State, s.Term, s.Leader, s.CommitIndex, s.Applied, s.LastIndex, s.SnapshotIndex, s.Members)
}

// HasPending reports whether the node has undrained outputs; simulation
// drivers use it to know when to call Ready.
func (n *Node) HasPending() bool {
	return len(n.msgs) > 0 || n.applied < n.commitIndex
}

// Log returns a copy of the node's log (for tests and debugging).
func (n *Node) Log() []Entry {
	out := make([]Entry, len(n.log))
	copy(out, n.log)
	return out
}
