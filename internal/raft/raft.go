// Package raft is a from-scratch implementation of the Raft consensus
// algorithm (Ongaro & Ousterhout, USENIX ATC'14) covering the three
// subproblems the paper relies on: leader election with randomized
// timeouts U(T, 2T), log replication with the consistency check, and the
// safety restrictions (up-to-date-log voting rule, current-term-only
// commit), plus single-server cluster membership change — the mechanism
// by which a newly elected subgroup leader joins the FedAvg layer.
//
// The node is a pure, tick-driven state machine in the style of etcd/raft:
// time advances only through Tick(), inputs arrive only through Step(),
// and outputs (messages to send, newly committed entries, leadership
// changes) are collected through Ready(). This makes the node trivially
// embeddable both in the discrete-event simulator (internal/simnet), where
// one tick is one virtual millisecond, and in a real-time loop driven by a
// time.Ticker (cmd/p2pfl-node).
package raft

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/telemetry"
)

// State is the role of a Raft node (Fig. 2 of the paper).
type State int

const (
	// Follower responds to requests from leaders and candidates.
	Follower State = iota
	// Candidate is campaigning to become leader.
	Candidate
	// Leader handles all client requests and replicates the log.
	Leader
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// None is the nil node ID (no leader known / no vote cast).
const None uint64 = 0

// EntryType distinguishes application data from configuration changes.
type EntryType int

const (
	// EntryNormal carries application data.
	EntryNormal EntryType = iota
	// EntryConfChange carries a JSON-encoded ConfChange.
	EntryConfChange
	// EntryNoop is the empty entry a new leader appends to commit
	// entries from previous terms.
	EntryNoop
)

// Entry is one replicated log entry.
type Entry struct {
	Index uint64
	Term  uint64
	Type  EntryType
	Data  []byte
}

// ConfChange is a single-server membership change.
type ConfChange struct {
	Add    bool   `json:"add"` // true: add node; false: remove node
	NodeID uint64 `json:"node_id"`
}

// Encode serializes the change for an EntryConfChange payload.
func (cc ConfChange) Encode() []byte {
	b, err := json.Marshal(cc)
	if err != nil {
		panic(err) // marshalling two scalar fields cannot fail
	}
	return b
}

// DecodeConfChange parses an EntryConfChange payload.
func DecodeConfChange(data []byte) (ConfChange, error) {
	var cc ConfChange
	if err := json.Unmarshal(data, &cc); err != nil {
		return ConfChange{}, fmt.Errorf("raft: bad conf change: %w", err)
	}
	return cc, nil
}

// MsgType enumerates the Raft RPCs.
type MsgType int

const (
	// MsgVoteRequest is the RequestVote RPC.
	MsgVoteRequest MsgType = iota
	// MsgVoteResponse answers a RequestVote RPC.
	MsgVoteResponse
	// MsgAppend is the AppendEntries RPC (also the heartbeat).
	MsgAppend
	// MsgAppendResponse answers an AppendEntries RPC.
	MsgAppendResponse
	// MsgSnapshot is the InstallSnapshot RPC, sent when a follower's
	// next index has been compacted away (answered with MsgAppendResponse).
	MsgSnapshot
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgVoteRequest:
		return "RequestVote"
	case MsgVoteResponse:
		return "RequestVoteResp"
	case MsgAppend:
		return "AppendEntries"
	case MsgAppendResponse:
		return "AppendEntriesResp"
	case MsgSnapshot:
		return "InstallSnapshot"
	default:
		return fmt.Sprintf("msg(%d)", int(t))
	}
}

// Message is one Raft RPC or response.
type Message struct {
	Type MsgType
	From uint64
	To   uint64
	Term uint64

	// MsgVoteRequest: candidate's log position (the voting restriction).
	LastLogIndex uint64
	LastLogTerm  uint64
	// MsgVoteResponse.
	Granted bool
	// MsgAppend.
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []Entry
	Commit       uint64
	// MsgAppendResponse.
	Reject bool
	// Match carries the follower's last replicated index on success, or a
	// next-index hint on rejection.
	Match uint64
	// MsgSnapshot.
	Snapshot *Snapshot
}

// Snapshot is a compacted prefix of the log: everything up to and
// including Index is replaced by the application state in Data plus the
// membership in Peers. Followers that have fallen behind the compaction
// point receive it via the InstallSnapshot RPC.
type Snapshot struct {
	Index uint64
	Term  uint64
	Peers []uint64
	// Data is the opaque application state at Index (whatever the state
	// machine's SnapshotState callback captured).
	Data []byte
}

// Config parameterizes a node.
type Config struct {
	// ID is this node's non-zero identifier.
	ID uint64
	// Peers is the initial cluster membership, including ID. A joining
	// node that is not yet a member passes the current members without
	// its own ID and learns of its own addition through a ConfChange.
	Peers []uint64
	// ElectionTickMin/Max bound the randomized election timeout, in
	// ticks: each timer reset samples uniformly from [Min, Max). The
	// paper uses U(T, 2T), i.e. Min = T, Max = 2T.
	ElectionTickMin int
	ElectionTickMax int
	// HeartbeatTick is the leader's heartbeat interval in ticks.
	HeartbeatTick int
	// Rng drives timeout randomization; nil seeds from ID.
	Rng *rand.Rand

	// SnapshotThreshold, when positive, auto-compacts the log once more
	// than this many applied entries have accumulated since the last
	// snapshot. SnapshotState, if set, captures the application state
	// stored in the snapshot (nil data otherwise).
	SnapshotThreshold int
	SnapshotState     func() []byte

	// Telemetry, when non-nil, receives raft/* counters and trace
	// events. Message counts are batched into Ready() so the tick/step
	// hot path stays free of per-message atomics.
	Telemetry *telemetry.Registry
}

func (c *Config) validate() error {
	if c.ID == None {
		return fmt.Errorf("raft: node ID must be non-zero")
	}
	if c.ElectionTickMin <= 0 || c.ElectionTickMax <= c.ElectionTickMin {
		return fmt.Errorf("raft: election ticks [%d,%d) invalid", c.ElectionTickMin, c.ElectionTickMax)
	}
	if c.HeartbeatTick <= 0 {
		return fmt.Errorf("raft: heartbeat tick %d invalid", c.HeartbeatTick)
	}
	if c.HeartbeatTick >= c.ElectionTickMin {
		return fmt.Errorf("raft: heartbeat tick %d must be < election tick min %d", c.HeartbeatTick, c.ElectionTickMin)
	}
	return nil
}

// Ready is the batch of outputs drained from a node after Tick/Step.
type Ready struct {
	// Messages must be sent to their destinations.
	Messages []Message
	// Committed are newly committed entries, in order, to apply to the
	// state machine. Conf changes have already been applied to the
	// node's own membership view.
	Committed []Entry
	// InstalledSnapshot, when non-nil, replaces the state machine: the
	// application must restore itself from its Data before applying
	// Committed (which only holds entries after the snapshot).
	InstalledSnapshot *Snapshot
	// State/Term/Leader snapshot the node after the batch.
	State  State
	Term   uint64
	Leader uint64
}

// Node is a single Raft participant.
type Node struct {
	id    uint64
	state State

	term     uint64
	votedFor uint64
	leader   uint64

	// log holds entries after the snapshot point: log[i] has raft index
	// snapIndex+i+1.
	log         []Entry
	snapIndex   uint64
	snapTerm    uint64
	snapshot    *Snapshot // latest snapshot (nil before any compaction)
	pendingSnap *Snapshot // installed snapshot awaiting Ready delivery
	commitIndex uint64
	applied     uint64

	peers map[uint64]bool // current configuration (voting members)

	// Candidate state.
	votes map[uint64]bool

	// Leader state.
	nextIndex  map[uint64]uint64
	matchIndex map[uint64]uint64

	// Timers (in ticks).
	electionElapsed  int
	heartbeatElapsed int
	electionTimeout  int

	cfg Config
	rng *rand.Rand
	tel nodeTel

	msgs []Message
}

// nodeTel holds the node's pre-resolved metric handles. With no
// registry configured every handle is nil and updates are no-ops, so
// call sites stay unconditional.
type nodeTel struct {
	reg                *telemetry.Registry
	electionsStarted   *telemetry.Counter
	electionsWon       *telemetry.Counter
	termsAdvanced      *telemetry.Counter
	entriesAppended    *telemetry.Counter
	entriesCommitted   *telemetry.Counter
	snapshotsTaken     *telemetry.Counter
	snapshotsInstalled *telemetry.Counter
	msgsSent           *telemetry.Counter
}

func newNodeTel(reg *telemetry.Registry) nodeTel {
	return nodeTel{
		reg:                reg,
		electionsStarted:   reg.Counter("raft/elections_started"),
		electionsWon:       reg.Counter("raft/elections_won"),
		termsAdvanced:      reg.Counter("raft/terms_advanced"),
		entriesAppended:    reg.Counter("raft/entries_appended"),
		entriesCommitted:   reg.Counter("raft/entries_committed"),
		snapshotsTaken:     reg.Counter("raft/snapshots_taken"),
		snapshotsInstalled: reg.Counter("raft/snapshots_installed"),
		msgsSent:           reg.Counter("raft/msgs_sent"),
	}
}

// NewNode creates a node from cfg.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(int64(cfg.ID)))
	}
	n := &Node{
		id:         cfg.ID,
		state:      Follower,
		votedFor:   None,
		leader:     None,
		peers:      make(map[uint64]bool),
		nextIndex:  make(map[uint64]uint64),
		matchIndex: make(map[uint64]uint64),
		cfg:        cfg,
		rng:        rng,
		tel:        newNodeTel(cfg.Telemetry),
	}
	for _, p := range cfg.Peers {
		if p == None {
			return nil, fmt.Errorf("raft: peer ID must be non-zero")
		}
		n.peers[p] = true
	}
	n.resetElectionTimeout()
	return n, nil
}

// ID returns the node's identifier.
func (n *Node) ID() uint64 { return n.id }

// State returns the node's current role.
func (n *Node) State() State { return n.state }

// Term returns the node's current term.
func (n *Node) Term() uint64 { return n.term }

// Leader returns the node's view of the current leader (None if unknown).
func (n *Node) Leader() uint64 { return n.leader }

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 { return n.commitIndex }

// Members returns the current configuration, sorted.
func (n *Node) Members() []uint64 {
	out := make([]uint64, 0, len(n.peers))
	for p := range n.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsMember reports whether id is in the current configuration.
func (n *Node) IsMember(id uint64) bool { return n.peers[id] }

// LastIndex returns the index of the last entry in the log (including
// the compacted prefix) — exposed for invariant probes (internal/chaos).
func (n *Node) LastIndex() uint64 { return n.lastIndex() }

func (n *Node) lastIndex() uint64 { return n.snapIndex + uint64(len(n.log)) }

func (n *Node) termAt(i uint64) uint64 {
	if i == n.snapIndex {
		return n.snapTerm
	}
	if i <= n.snapIndex || i > n.lastIndex() {
		return 0
	}
	return n.log[i-n.snapIndex-1].Term
}

func (n *Node) entryAt(i uint64) Entry { return n.log[i-n.snapIndex-1] }

func (n *Node) resetElectionTimeout() {
	span := n.cfg.ElectionTickMax - n.cfg.ElectionTickMin
	n.electionTimeout = n.cfg.ElectionTickMin + n.rng.Intn(span)
	n.electionElapsed = 0
}

func (n *Node) quorum() int { return len(n.peers)/2 + 1 }

// Tick advances the node's logical clock by one tick (the caller defines
// the tick duration; the experiments use 1 ms).
func (n *Node) Tick() {
	if n.state == Leader {
		n.heartbeatElapsed++
		if n.heartbeatElapsed >= n.cfg.HeartbeatTick {
			n.heartbeatElapsed = 0
			n.broadcastAppend()
		}
		return
	}
	n.electionElapsed++
	if n.electionElapsed >= n.electionTimeout {
		n.campaign()
	}
}

// Campaign forces an immediate election (used by tests and by bootstrap
// helpers; normal operation relies on the election timeout).
func (n *Node) Campaign() { n.campaign() }

func (n *Node) campaign() {
	if !n.peers[n.id] {
		// Not (yet) a voting member: keep waiting. A joining node must
		// not disrupt the group it wants to join.
		n.resetElectionTimeout()
		return
	}
	n.state = Candidate
	n.term++
	n.votedFor = n.id
	n.leader = None
	n.votes = map[uint64]bool{n.id: true}
	n.resetElectionTimeout()
	n.tel.electionsStarted.Inc()
	n.tel.termsAdvanced.Inc()
	n.tel.reg.Trace("raft/election_started", n.id, -1, telemetry.F("term", int64(n.term)))
	if len(n.votes) >= n.quorum() {
		// Single-node cluster.
		n.becomeLeader()
		return
	}
	// Iterate in sorted order so the emitted message order is identical
	// across runs — the discrete-event simulator delivers same-time events
	// in schedule order, and deterministic replay (internal/chaos) needs
	// byte-for-byte identical runs from identical seeds.
	for _, p := range n.Members() {
		if p == n.id {
			continue
		}
		n.send(Message{
			Type:         MsgVoteRequest,
			To:           p,
			Term:         n.term,
			LastLogIndex: n.lastIndex(),
			LastLogTerm:  n.termAt(n.lastIndex()),
		})
	}
}

func (n *Node) becomeFollower(term, leader uint64) {
	n.state = Follower
	if term > n.term {
		n.term = term
		n.votedFor = None
		n.tel.termsAdvanced.Inc()
	}
	n.leader = leader
	n.votes = nil
	n.resetElectionTimeout()
}

func (n *Node) becomeLeader() {
	n.state = Leader
	n.leader = n.id
	n.heartbeatElapsed = 0
	n.nextIndex = make(map[uint64]uint64)
	n.matchIndex = make(map[uint64]uint64)
	for p := range n.peers {
		n.nextIndex[p] = n.lastIndex() + 1
		n.matchIndex[p] = 0
	}
	n.matchIndex[n.id] = n.lastIndex()
	n.tel.electionsWon.Inc()
	n.tel.reg.Trace("raft/leader_elected", n.id, -1, telemetry.F("term", int64(n.term)))
	// Append a no-op so entries from previous terms commit (Sec. 5.4.2 of
	// the Raft paper; Sec. III-C3 of the reproduced paper).
	n.appendEntry(Entry{Type: EntryNoop})
	n.broadcastAppend()
}

func (n *Node) appendEntry(e Entry) {
	e.Index = n.lastIndex() + 1
	e.Term = n.term
	n.log = append(n.log, e)
	n.tel.entriesAppended.Inc()
	n.matchIndex[n.id] = n.lastIndex()
	n.maybeCommit()
}

// Propose appends a client command to the leader's log. ErrNotLeader is
// returned on non-leaders; the caller should redirect to Leader().
func (n *Node) Propose(data []byte) error {
	if n.state != Leader {
		return ErrNotLeader
	}
	n.appendEntry(Entry{Type: EntryNormal, Data: data})
	n.broadcastAppend()
	return nil
}

// ProposeConfChange appends a single-server membership change.
func (n *Node) ProposeConfChange(cc ConfChange) error {
	if n.state != Leader {
		return ErrNotLeader
	}
	if cc.NodeID == None {
		return fmt.Errorf("raft: conf change with zero node ID")
	}
	n.appendEntry(Entry{Type: EntryConfChange, Data: cc.Encode()})
	n.broadcastAppend()
	return nil
}

// ErrNotLeader is returned by proposals on non-leader nodes.
var ErrNotLeader = fmt.Errorf("raft: not the leader")

func (n *Node) send(m Message) {
	m.From = n.id
	n.msgs = append(n.msgs, m)
}

func (n *Node) broadcastAppend() {
	// Sorted iteration keeps emission order deterministic (see campaign).
	for _, p := range n.Members() {
		if p == n.id {
			continue
		}
		n.sendAppend(p)
	}
}

func (n *Node) sendAppend(to uint64) {
	next := n.nextIndex[to]
	if next == 0 {
		next = 1
	}
	if next <= n.snapIndex {
		// The follower needs entries that were compacted away: ship the
		// snapshot instead (InstallSnapshot RPC).
		n.send(Message{Type: MsgSnapshot, To: to, Term: n.term, Snapshot: n.snapshot})
		return
	}
	prev := next - 1
	var entries []Entry
	if next <= n.lastIndex() {
		entries = append(entries, n.log[next-n.snapIndex-1:]...)
	}
	n.send(Message{
		Type:         MsgAppend,
		To:           to,
		Term:         n.term,
		PrevLogIndex: prev,
		PrevLogTerm:  n.termAt(prev),
		Entries:      entries,
		Commit:       n.commitIndex,
	})
}

// Step feeds one inbound message into the state machine.
func (n *Node) Step(m Message) error {
	if m.Term > n.term {
		// Newer term always demotes. For append RPCs the sender is the
		// leader of that term; vote requests leave the leader unknown.
		leader := None
		if m.Type == MsgAppend {
			leader = m.From
		}
		n.becomeFollower(m.Term, leader)
	}
	switch m.Type {
	case MsgVoteRequest:
		n.handleVoteRequest(m)
	case MsgVoteResponse:
		n.handleVoteResponse(m)
	case MsgAppend:
		n.handleAppend(m)
	case MsgAppendResponse:
		n.handleAppendResponse(m)
	case MsgSnapshot:
		n.handleSnapshot(m)
	default:
		return fmt.Errorf("raft: unknown message type %v", m.Type)
	}
	return nil
}

func (n *Node) handleVoteRequest(m Message) {
	granted := false
	if m.Term == n.term && (n.votedFor == None || n.votedFor == m.From) && n.logUpToDate(m.LastLogIndex, m.LastLogTerm) {
		granted = true
		n.votedFor = m.From
		n.resetElectionTimeout()
	}
	n.send(Message{Type: MsgVoteResponse, To: m.From, Term: n.term, Granted: granted})
}

// logUpToDate implements the election restriction: the candidate's log is
// at least as up-to-date as the voter's (Sec. 5.4.1).
func (n *Node) logUpToDate(lastIndex, lastTerm uint64) bool {
	myTerm := n.termAt(n.lastIndex())
	if lastTerm != myTerm {
		return lastTerm > myTerm
	}
	return lastIndex >= n.lastIndex()
}

func (n *Node) handleVoteResponse(m Message) {
	if n.state != Candidate || m.Term != n.term {
		return
	}
	if m.Granted && n.peers[m.From] {
		n.votes[m.From] = true
		if len(n.votes) >= n.quorum() {
			n.becomeLeader()
		}
	}
}

func (n *Node) handleAppend(m Message) {
	if m.Term < n.term {
		n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Reject: true})
		return
	}
	// Valid leader for our term.
	if n.state != Follower || n.leader != m.From {
		n.becomeFollower(m.Term, m.From)
	} else {
		n.resetElectionTimeout()
	}
	// Consistency check. A prev point inside our compacted prefix is
	// fine by definition (committed entries never diverge) but we can
	// only resume from the snapshot index.
	if m.PrevLogIndex < n.snapIndex {
		n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Reject: true, Match: n.snapIndex})
		return
	}
	if m.PrevLogIndex > n.lastIndex() || n.termAt(m.PrevLogIndex) != m.PrevLogTerm {
		hint := n.lastIndex()
		if m.PrevLogIndex < hint {
			hint = m.PrevLogIndex
		}
		if hint > 0 {
			hint--
		}
		if hint < n.snapIndex {
			hint = n.snapIndex
		}
		n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Reject: true, Match: hint})
		return
	}
	// Append, truncating conflicts (same index, different term).
	appended := int64(0)
	for _, e := range m.Entries {
		switch {
		case e.Index <= n.snapIndex:
			// Already compacted: committed entries never conflict.
		case e.Index <= n.lastIndex() && n.termAt(e.Index) == e.Term:
			// Already have it.
		case e.Index <= n.lastIndex():
			// Conflict: truncate and append.
			n.log = n.log[:e.Index-n.snapIndex-1]
			n.log = append(n.log, e)
			appended++
		default:
			n.log = append(n.log, e)
			appended++
		}
	}
	if appended > 0 {
		n.tel.entriesAppended.Add(appended)
	}
	// Advance commit index.
	last := m.PrevLogIndex + uint64(len(m.Entries))
	if m.Commit > n.commitIndex {
		c := m.Commit
		if last < c {
			c = last
		}
		if c > n.commitIndex {
			n.commitIndex = c
		}
	}
	n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Match: last})
}

func (n *Node) handleAppendResponse(m Message) {
	if n.state != Leader || m.Term != n.term {
		return
	}
	if m.Reject {
		// Back up using the follower's hint and retry.
		next := m.Match + 1
		if next < 1 {
			next = 1
		}
		if next < n.nextIndex[m.From] {
			n.nextIndex[m.From] = next
		} else if n.nextIndex[m.From] > 1 {
			n.nextIndex[m.From]--
		}
		n.sendAppend(m.From)
		return
	}
	if m.Match > n.matchIndex[m.From] {
		n.matchIndex[m.From] = m.Match
	}
	if n.nextIndex[m.From] < m.Match+1 {
		n.nextIndex[m.From] = m.Match + 1
	}
	n.maybeCommit()
	// Keep pushing if the follower is still behind.
	if n.nextIndex[m.From] <= n.lastIndex() {
		n.sendAppend(m.From)
	}
}

// handleSnapshot installs a leader's snapshot (InstallSnapshot RPC).
func (n *Node) handleSnapshot(m Message) {
	if m.Term < n.term || m.Snapshot == nil {
		n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Reject: true})
		return
	}
	if n.state != Follower || n.leader != m.From {
		n.becomeFollower(m.Term, m.From)
	} else {
		n.resetElectionTimeout()
	}
	s := m.Snapshot
	if s.Index <= n.commitIndex {
		// Stale snapshot: we already have everything in it.
		n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Match: n.commitIndex})
		return
	}
	snap := &Snapshot{Index: s.Index, Term: s.Term, Peers: append([]uint64(nil), s.Peers...), Data: append([]byte(nil), s.Data...)}
	n.snapIndex, n.snapTerm = snap.Index, snap.Term
	n.snapshot = snap
	n.pendingSnap = snap
	n.log = nil
	n.commitIndex = snap.Index
	n.applied = snap.Index
	n.peers = make(map[uint64]bool, len(snap.Peers))
	for _, p := range snap.Peers {
		n.peers[p] = true
	}
	n.tel.snapshotsInstalled.Inc()
	n.tel.reg.Trace("raft/snapshot_installed", n.id, -1, telemetry.F("index", int64(snap.Index)))
	n.send(Message{Type: MsgAppendResponse, To: m.From, Term: n.term, Match: snap.Index})
}

// Compact discards the log up to and including index (which must be
// applied), recording a snapshot with the given application state. The
// paper's two-layer system commits FedAvg-layer configurations
// periodically and forever, so unbounded logs are compacted this way.
func (n *Node) Compact(index uint64, data []byte) error {
	if index <= n.snapIndex {
		return fmt.Errorf("raft: index %d already compacted (snapshot at %d)", index, n.snapIndex)
	}
	if index > n.applied {
		return fmt.Errorf("raft: cannot compact unapplied index %d (applied %d)", index, n.applied)
	}
	term := n.termAt(index)
	tail := make([]Entry, n.lastIndex()-index)
	copy(tail, n.log[index-n.snapIndex-1+1:])
	n.log = tail
	n.snapIndex, n.snapTerm = index, term
	n.snapshot = &Snapshot{Index: index, Term: term, Peers: n.Members(), Data: append([]byte(nil), data...)}
	n.tel.snapshotsTaken.Inc()
	return nil
}

// SnapshotIndex returns the current compaction point (0 if none).
func (n *Node) SnapshotIndex() uint64 { return n.snapIndex }

// maybeCommit advances commitIndex to the highest index replicated on a
// quorum whose entry is from the current term (the Sec. 5.4.2 rule).
func (n *Node) maybeCommit() {
	if n.state != Leader {
		return
	}
	for idx := n.lastIndex(); idx > n.commitIndex; idx-- {
		if n.termAt(idx) != n.term {
			break
		}
		count := 0
		for p := range n.peers {
			if p == n.id {
				if n.lastIndex() >= idx {
					count++
				}
				continue
			}
			if n.matchIndex[p] >= idx {
				count++
			}
		}
		if count >= n.quorum() {
			n.commitIndex = idx
			break
		}
	}
}

// Ready drains the node's pending outputs: outbound messages and newly
// committed entries (with conf changes applied to the membership view).
func (n *Node) Ready() Ready {
	// Auto-compaction runs before draining newly committed entries, so it
	// only ever covers entries handed to the driver in earlier batches —
	// which the driver has already applied to the state machine. Running
	// it after the drain would stamp the snapshot with the new applied
	// index while SnapshotState() still reflects the pre-batch state, and
	// a follower installed from that snapshot would silently lose the
	// batch.
	if n.cfg.SnapshotThreshold > 0 && n.applied-n.snapIndex > uint64(n.cfg.SnapshotThreshold) {
		var data []byte
		if n.cfg.SnapshotState != nil {
			data = n.cfg.SnapshotState()
		}
		// Compact cannot fail here: applied > snapIndex is guaranteed.
		_ = n.Compact(n.applied, data)
	}
	rd := Ready{State: n.state, Term: n.term, Leader: n.leader}
	rd.Messages = n.msgs
	n.msgs = nil
	if len(rd.Messages) > 0 {
		n.tel.msgsSent.Add(int64(len(rd.Messages)))
	}
	if n.pendingSnap != nil {
		rd.InstalledSnapshot = n.pendingSnap
		n.pendingSnap = nil
	}
	for n.applied < n.commitIndex {
		n.applied++
		e := n.entryAt(n.applied)
		if e.Type == EntryConfChange {
			if cc, err := DecodeConfChange(e.Data); err == nil {
				n.applyConfChange(cc)
			}
		}
		rd.Committed = append(rd.Committed, e)
	}
	if len(rd.Committed) > 0 {
		n.tel.entriesCommitted.Add(int64(len(rd.Committed)))
	}
	return rd
}

func (n *Node) applyConfChange(cc ConfChange) {
	if cc.Add {
		if !n.peers[cc.NodeID] {
			n.peers[cc.NodeID] = true
			if n.state == Leader {
				n.nextIndex[cc.NodeID] = n.lastIndex() + 1
				n.matchIndex[cc.NodeID] = 0
				n.sendAppend(cc.NodeID)
			}
		}
		return
	}
	delete(n.peers, cc.NodeID)
	if cc.NodeID == n.id && n.state == Leader {
		// A leader that applies its own removal steps down; otherwise
		// its heartbeats would suppress elections among the remaining
		// members forever.
		n.becomeFollower(n.term, None)
		return
	}
	if n.state == Leader {
		delete(n.nextIndex, cc.NodeID)
		delete(n.matchIndex, cc.NodeID)
		n.maybeCommit() // quorum may have shrunk
	}
}

// Status is a point-in-time diagnostic snapshot of a node.
type Status struct {
	ID            uint64
	State         State
	Term          uint64
	Leader        uint64
	CommitIndex   uint64
	Applied       uint64
	LastIndex     uint64
	SnapshotIndex uint64
	Members       []uint64
}

// Status returns the node's current diagnostic snapshot.
func (n *Node) Status() Status {
	return Status{
		ID:            n.id,
		State:         n.state,
		Term:          n.term,
		Leader:        n.leader,
		CommitIndex:   n.commitIndex,
		Applied:       n.applied,
		LastIndex:     n.lastIndex(),
		SnapshotIndex: n.snapIndex,
		Members:       n.Members(),
	}
}

// String implements fmt.Stringer for log lines.
func (s Status) String() string {
	return fmt.Sprintf("node %d: %s term=%d leader=%d commit=%d applied=%d last=%d snap=%d members=%v",
		s.ID, s.State, s.Term, s.Leader, s.CommitIndex, s.Applied, s.LastIndex, s.SnapshotIndex, s.Members)
}

// HasPending reports whether the node has undrained outputs; simulation
// drivers use it to know when to call Ready.
func (n *Node) HasPending() bool {
	return len(n.msgs) > 0 || n.applied < n.commitIndex
}

// Log returns a copy of the node's log (for tests and debugging).
func (n *Node) Log() []Entry {
	out := make([]Entry, len(n.log))
	copy(out, n.log)
	return out
}
