package raft

import (
	"math/rand"
	"strings"
	"testing"
)

func TestStatusSnapshot(t *testing.T) {
	c := newCluster(t, 1, 2, 3)
	l := c.waitLeader(100)
	st := l.Status()
	if st.State != Leader || st.ID != l.ID() || st.Leader != l.ID() {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Members) != 3 {
		t.Fatalf("members = %v", st.Members)
	}
	if !strings.Contains(st.String(), "leader") {
		t.Fatalf("status string: %s", st.String())
	}
}

// FuzzStepNeverPanics drives a node with arbitrary messages: whatever a
// byzantine or buggy peer sends, Step must return (possibly an error)
// without panicking and without corrupting basic invariants.
func FuzzStepNeverPanics(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint64(5), uint64(2), uint64(1), false, []byte("x"))
	f.Add(uint8(2), uint64(2), uint64(0), uint64(99), uint64(98), true, []byte{})
	f.Add(uint8(3), uint64(3), uint64(7), uint64(1), uint64(1), false, []byte("entry"))
	f.Add(uint8(4), uint64(9), uint64(3), uint64(0), uint64(0), false, []byte("snap"))
	f.Fuzz(func(t *testing.T, typ uint8, from, term, idx, idx2 uint64, flag bool, data []byte) {
		n, err := NewNode(Config{
			ID: 1, Peers: []uint64{1, 2, 3},
			ElectionTickMin: 10, ElectionTickMax: 20, HeartbeatTick: 2,
			Rng: rand.New(rand.NewSource(1)),
		})
		if err != nil {
			t.Fatal(err)
		}
		msg := Message{
			Type:         MsgType(typ % 6), // includes one invalid type
			From:         from,
			To:           1,
			Term:         term,
			LastLogIndex: idx,
			LastLogTerm:  idx2,
			PrevLogIndex: idx,
			PrevLogTerm:  idx2,
			Commit:       idx2,
			Granted:      flag,
			Reject:       flag,
			Match:        idx,
			Entries:      []Entry{{Index: idx + 1, Term: term, Data: data}},
		}
		if MsgType(typ%6) == MsgSnapshot {
			msg.Snapshot = &Snapshot{Index: idx, Term: idx2, Peers: []uint64{1, 2, 3}, Data: data}
		}
		_ = n.Step(msg) // must not panic
		// Basic invariants survive arbitrary input.
		if n.CommitIndex() > n.lastIndex() {
			t.Fatalf("commit %d beyond last index %d", n.CommitIndex(), n.lastIndex())
		}
		// Ready never panics either.
		n.Ready()
		n.Tick()
		n.Ready()
	})
}

// FuzzConfChangeDecode: arbitrary bytes must never panic the decoder.
func FuzzConfChangeDecode(f *testing.F) {
	f.Add([]byte(`{"add":true,"node_id":3}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		cc, err := DecodeConfChange(data)
		if err == nil && cc.NodeID == 0 && cc.Add {
			// Decoded a conf change with a zero ID — allowed at the codec
			// level; appliers validate separately.
			_ = cc
		}
	})
}
