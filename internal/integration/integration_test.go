// Package integration ties the whole system of the paper together: the
// two-layer Raft (internal/cluster, on virtual time) elects and tracks
// the leaders that the two-layer aggregation (internal/core) uses each
// round, while peers train real models (internal/fl, internal/nn). The
// FedAvg leader is killed mid-training and learning continues after the
// Raft layers recover — the end-to-end claim of the paper.
package integration

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/raft"
	"repro/internal/simnet"
)

// leadersFromCluster maps the cluster's current Raft leaders to core's
// per-subgroup leader indices and the FedAvg-leading subgroup.
func leadersFromCluster(t *testing.T, sys *cluster.System, numSub int) (leaders []int, fedSub int) {
	t.Helper()
	fedSub = -1
	fedID := sys.FedAvgLeader()
	for g := 0; g < numSub; g++ {
		id := sys.SubgroupLeader(g)
		if id == raft.None {
			t.Fatalf("subgroup %d has no leader", g)
		}
		peers := sys.SubgroupPeers(g)
		idx := -1
		for i, p := range peers {
			if p == id {
				idx = i
			}
		}
		if idx < 0 {
			t.Fatalf("leader %d not in subgroup %d", id, g)
		}
		leaders = append(leaders, idx)
		if id == fedID {
			fedSub = g
		}
	}
	return leaders, fedSub
}

func TestEndToEndTwoLayerSystem(t *testing.T) {
	const (
		numSub  = 3
		subSize = 3
		peers   = numSub * subSize
	)
	// --- consensus backend on virtual time ---
	cl, err := cluster.New(cluster.Options{
		NumSubgroups:    numSub,
		SubgroupSize:    subSize,
		ElectionTickMin: 50,
		ElectionTickMax: 100,
		Latency:         15 * simnet.Millisecond,
		Seed:            11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Bootstrap(30 * simnet.Second); err != nil {
		t.Fatal(err)
	}
	cl.Sim.RunFor(500 * simnet.Millisecond)

	// --- federated learning side ---
	rng := rand.New(rand.NewSource(12))
	train, test, err := dataset.Generate(dataset.Tiny(4, peers*40, 200, 13))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.Partition(train, peers, dataset.IID, rng)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*fl.Client, peers)
	for i := range clients {
		model := nn.MLP(train.PixelDim(), []int{16}, train.Classes, rand.New(rand.NewSource(int64(100+i))))
		clients[i] = fl.NewClient(i, model, optim.NewAdam(2e-3), parts[i],
			fl.TrainConfig{Epochs: 1, BatchSize: 10, Flat: true}, rand.New(rand.NewSource(int64(200+i))))
	}
	agg, err := core.NewSystem(core.Config{
		Sizes: []int{subSize, subSize, subSize},
		K:     []int{2},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	evalModel := nn.MLP(train.PixelDim(), []int{16}, train.Classes, rand.New(rand.NewSource(300)))
	global := clients[0].Weights()

	crashed := map[uint64]bool{}
	runRound := func(round int) {
		t.Helper()
		leaders, fedSub := leadersFromCluster(t, cl, numSub)
		models := make([][]float64, peers)
		counts := make([]float64, peers)
		for i, c := range clients {
			if err := c.SetWeights(global); err != nil {
				t.Fatal(err)
			}
			if crashed[uint64(i+1)] {
				// A crashed peer trains nothing; its old model enters
				// SAC only if it is still alive at protocol time — here
				// we simply keep its last weights, which the k-out-of-n
				// protocol tolerates.
				models[i] = c.Weights()
				counts[i] = 0
				continue
			}
			if _, err := c.TrainRound(); err != nil {
				t.Fatal(err)
			}
			models[i] = c.Weights()
			counts[i] = float64(c.SampleCount())
		}
		res, err := agg.AggregateRound(models, core.RoundSpec{
			SampleCounts: counts,
			Leaders:      leaders,
			FedLeader:    fedSub,
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		global = res.Global
		// Each aggregation round takes some wall-clock; advance the
		// consensus layer accordingly.
		cl.Sim.RunFor(200 * simnet.Millisecond)
	}

	for round := 1; round <= 3; round++ {
		runRound(round)
	}

	// --- kill the FedAvg leader mid-training (Sec. V-B1) ---
	victim := cl.FedAvgLeader()
	victimSub := cl.Peer(victim).Subgroup
	if err := cl.CrashPeer(victim); err != nil {
		t.Fatal(err)
	}
	crashed[victim] = true
	if _, _, err := cl.WaitFedAvgLeader(victim, 30*simnet.Second); err != nil {
		t.Fatal(err)
	}
	newSub, _, err := cl.WaitSubgroupLeader(victimSub, victim, 30*simnet.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WaitJoined(newSub, 60*simnet.Second); err != nil {
		t.Fatal(err)
	}

	for round := 4; round <= 6; round++ {
		runRound(round)
	}

	if err := evalModel.SetWeightVector(global); err != nil {
		t.Fatal(err)
	}
	acc, _, err := fl.EvaluateModel(evalModel, test, true)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Fatalf("end-to-end accuracy after leader crash = %v", acc)
	}
	// The new leadership really is different where it matters.
	if cl.FedAvgLeader() == victim {
		t.Fatal("dead peer still leads")
	}
}

// The aggregation must respect arbitrary Raft-elected leader positions:
// results are identical regardless of which member leads each subgroup.
func TestLeaderPositionDoesNotChangeResult(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	models := make([][]float64, 6)
	for i := range models {
		m := make([]float64, 8)
		for j := range m {
			m[j] = r.NormFloat64()
		}
		models[i] = m
	}
	var want []float64
	for _, leaders := range [][]int{{0, 0}, {1, 2}, {2, 1}} {
		sys, err := core.NewSystem(core.Config{Sizes: []int{3, 3}, K: []int{2}}, rand.New(rand.NewSource(22)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.AggregateRound(models, core.RoundSpec{Leaders: leaders, FedLeader: -1})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res.Global
			continue
		}
		for j := range want {
			if d := res.Global[j] - want[j]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("leaders %v change the aggregate", leaders)
			}
		}
	}
}
