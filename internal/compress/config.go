package compress

import (
	"fmt"
	"math"

	"repro/internal/wire"
)

// Scheme selects a compression scheme for model-delta traffic.
type Scheme int

const (
	// None ships full-fat float64 vectors (the default everywhere:
	// compression is strictly opt-in, and None reproduces the
	// uncompressed byte counts and training curves bit for bit).
	None Scheme = iota
	// Quant8 quantizes every coordinate to an int8 step (8× smaller).
	Quant8
	// Quant16 quantizes every coordinate to an int16 step (4× smaller).
	Quant16
	// TopK keeps the Frac·dim largest-magnitude coordinates at full
	// float64 precision (index block + value block).
	TopK
	// TopKQuant8 keeps Frac·dim coordinates and int8-quantizes them.
	TopKQuant8
	// TopKQuant16 keeps Frac·dim coordinates and int16-quantizes them.
	TopKQuant16
)

// String names the scheme as used in experiment labels and flags.
func (s Scheme) String() string {
	switch s {
	case None:
		return "none"
	case Quant8:
		return "quant8"
	case Quant16:
		return "quant16"
	case TopK:
		return "topk"
	case TopKQuant8:
		return "topk-quant8"
	case TopKQuant16:
		return "topk-quant16"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// ParseScheme is the inverse of Scheme.String, for CLI flags.
func ParseScheme(s string) (Scheme, error) {
	for _, c := range []Scheme{None, Quant8, Quant16, TopK, TopKQuant8, TopKQuant16} {
		if c.String() == s {
			return c, nil
		}
	}
	return None, fmt.Errorf("compress: unknown scheme %q", s)
}

// Config parameterizes compression of model-delta messages. The zero
// value means "off".
type Config struct {
	// Scheme selects the compression (None: off).
	Scheme Scheme
	// Frac is the kept-coordinate fraction for the TopK schemes,
	// in (0, 1]; 0 defaults to 0.1. Ignored by the dense schemes.
	Frac float64
}

// Enabled reports whether the config compresses anything.
func (c Config) Enabled() bool { return c.Scheme != None }

// Validate rejects malformed configs.
func (c Config) Validate() error {
	switch c.Scheme {
	case None, Quant8, Quant16, TopK, TopKQuant8, TopKQuant16:
	default:
		return fmt.Errorf("compress: unknown scheme %d", int(c.Scheme))
	}
	if c.Frac < 0 || c.Frac > 1 {
		return fmt.Errorf("compress: top-k fraction %v out of (0,1]", c.Frac)
	}
	return nil
}

// width returns the quantization width in bytes (0: full float64).
func (c Config) width() int {
	switch c.Scheme {
	case Quant8, TopKQuant8:
		return 1
	case Quant16, TopKQuant16:
		return 2
	}
	return 0
}

func (c Config) sparse() bool {
	return c.Scheme == TopK || c.Scheme == TopKQuant8 || c.Scheme == TopKQuant16
}

// Kept returns the kept-coordinate count for a dim-element vector: the
// rounded Frac·dim for top-k schemes (at least 1 for non-empty
// vectors), dim otherwise.
func (c Config) Kept(dim int) int {
	if !c.sparse() {
		return dim
	}
	f := c.Frac
	if f == 0 {
		f = 0.1
	}
	k := int(math.Round(f * float64(dim)))
	if k < 1 && dim > 0 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	return k
}

// MessageBytes returns the exact accounted byte size of one compressed
// model-delta message of dimension dim — the encoded block size, the
// compressed counterpart of the 8·dim the transports charge for a
// float64 payload (frame header and routing envelope are excluded on
// both sides, keeping the paper's cost unit). Deterministic closed
// form; internal/costmodel restates it and the tests cross-check all
// three against measured wire frames.
func (c Config) MessageBytes(dim int) int64 {
	switch c.Scheme {
	case None:
		return int64(8 * dim)
	case Quant8, Quant16:
		return int64(wire.QuantBlockSize(c.width(), dim))
	}
	return int64(wire.SparseBlockSize(c.width(), c.Kept(dim)))
}

// Delta is one compressed vector: exactly one of Quant/Sparse is set.
type Delta struct {
	Quant  *wire.QuantDelta
	Sparse *wire.SparseDelta
	// Bound is the error accounting of this compression.
	Bound Bound
}

// Compress encodes w under the config's scheme. It returns an error for
// invalid configs or Scheme None (callers gate on Enabled).
func (c Config) Compress(w []float64) (Delta, error) {
	if err := c.Validate(); err != nil {
		return Delta{}, err
	}
	switch c.Scheme {
	case None:
		return Delta{}, fmt.Errorf("compress: Compress called with scheme none")
	case Quant8, Quant16:
		q, b, err := Quantize(w, c.width(), nil)
		if err != nil {
			return Delta{}, err
		}
		return Delta{Quant: &q, Bound: b}, nil
	}
	s, b, err := Sparsify(w, c.Kept(len(w)), c.width())
	if err != nil {
		return Delta{}, err
	}
	return Delta{Sparse: &s, Bound: b}, nil
}

// Dense reconstructs the compressed vector into dst (reused when its
// capacity suffices).
func (d Delta) Dense(dst []float64) []float64 {
	if d.Quant != nil {
		return Dequantize(*d.Quant, dst)
	}
	return d.Sparse.Dense(dst)
}

// EncodedBytes returns the accounted size of this delta's block — equal
// to Config.MessageBytes for the dimension it was compressed from.
func (d Delta) EncodedBytes() int64 {
	if d.Quant != nil {
		return int64(wire.QuantBlockSize(d.Quant.Width, len(d.Quant.Q)))
	}
	return int64(wire.SparseBlockSize(d.Sparse.Width, len(d.Sparse.Idx)))
}

// AppendFrame appends the complete wire frame for this delta with the
// given mesh envelope — what TCPMesh puts on the socket for one
// compressed message.
func (d Delta) AppendFrame(dst []byte, m wire.MeshMessage) []byte {
	if d.Quant != nil {
		return wire.AppendQuantFrame(dst, m, *d.Quant)
	}
	return wire.AppendSparseFrame(dst, m, *d.Sparse)
}
