package compress

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/tensor"
	"repro/internal/wire"
)

func randVec(dim int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return w
}

// TestQuantizeRoundTripBound pins the quantizer contract: every
// coordinate reconstructs within scale/2 (up to a 1-ulp slack for the
// scale division itself), and the Bound reports exactly that.
func TestQuantizeRoundTripBound(t *testing.T) {
	for _, width := range []int{1, 2} {
		for _, dim := range []int{1, 7, 1000} {
			w := randVec(dim, int64(31*width+dim))
			q, b, err := Quantize(w, width, nil)
			if err != nil {
				t.Fatal(err)
			}
			if q.Width != width || len(q.Q) != dim {
				t.Fatalf("width %d dim %d: got %d/%d", width, dim, q.Width, len(q.Q))
			}
			dec := Dequantize(q, nil)
			limit := q.Scale/2 + q.Scale*1e-12
			for i := range w {
				if e := math.Abs(w[i] - dec[i]); e > limit {
					t.Fatalf("width %d dim %d: coord %d err %g > scale/2 = %g", width, dim, i, e, q.Scale/2)
				}
			}
			if b.MaxCoordErr != q.Scale/2 {
				t.Fatalf("bound says %g, want scale/2 = %g", b.MaxCoordErr, q.Scale/2)
			}
			if b.MeasuredMaxErr > limit {
				t.Fatalf("measured max err %g > %g", b.MeasuredMaxErr, limit)
			}
			if b.Kept != dim || b.Dim != dim {
				t.Fatalf("bound kept/dim = %d/%d", b.Kept, b.Dim)
			}
			// The extreme coordinate must use the full step range.
			maxStep := int16(maxQ8)
			if width == 2 {
				maxStep = maxQ16
			}
			peak := int16(0)
			for _, s := range q.Q {
				if s > peak {
					peak = s
				}
				if -s > peak {
					peak = -s
				}
			}
			if peak != maxStep {
				t.Fatalf("width %d: peak step %d, want %d", width, peak, maxStep)
			}
		}
	}
}

// TestQuantizeDeterministicAcrossWorkers runs the same compression at
// worker budgets 1, 2, 4 and 8 (under -race this also audits the panel
// handoff) and demands bit-identical blocks and bounds.
func TestQuantizeDeterministicAcrossWorkers(t *testing.T) {
	defer tensor.SetParallelism(tensor.Parallelism())
	w := randVec(4097, 7) // odd size: panels cannot split evenly
	type out struct {
		q wire.QuantDelta
		s wire.SparseDelta
		b Bound
	}
	var ref *out
	for _, workers := range []int{1, 2, 4, 8} {
		tensor.SetParallelism(workers)
		q, qb, err := Quantize(w, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, _, err := Sparsify(w, 411, 2)
		if err != nil {
			t.Fatal(err)
		}
		got := &out{q: q, s: s, b: qb}
		dec := Dequantize(q, nil)
		if ref == nil {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got.q, ref.q) || got.b != ref.b {
			t.Fatalf("workers=%d: quantized block differs from workers=1", workers)
		}
		if !reflect.DeepEqual(got.s, ref.s) {
			t.Fatalf("workers=%d: sparse block differs from workers=1", workers)
		}
		refDec := Dequantize(ref.q, nil)
		for i := range dec {
			if math.Float64bits(dec[i]) != math.Float64bits(refDec[i]) {
				t.Fatalf("workers=%d: dequantized coord %d differs", workers, i)
			}
		}
	}
}

// TestTopKTiesLowestIndex pins the tie-break: equal magnitudes keep the
// lowest index.
func TestTopKTiesLowestIndex(t *testing.T) {
	w := []float64{1, -1, 1, -1, 1, 0.5}
	s, b, err := Sparsify(w, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int32{0, 1, 2}; !reflect.DeepEqual(s.Idx, want) {
		t.Fatalf("ties: kept %v, want %v", s.Idx, want)
	}
	if want := []float64{1, -1, 1}; !reflect.DeepEqual(s.Vals, want) {
		t.Fatalf("ties: vals %v, want %v", s.Vals, want)
	}
	// The largest dropped magnitude (the tied 1 at index 3) is the bound.
	if b.MaxCoordErr != 1 {
		t.Fatalf("bound %g, want 1", b.MaxCoordErr)
	}
}

func TestTopKSelectsLargest(t *testing.T) {
	w := randVec(500, 3)
	k := 50
	s, b, err := Sparsify(w, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Idx) != k || b.Kept != k || b.Dim != 500 {
		t.Fatalf("kept %d (%+v)", len(s.Idx), b)
	}
	// Every kept magnitude ≥ every dropped magnitude.
	kept := make(map[int32]bool, k)
	minKept := math.Inf(1)
	for i, ix := range s.Idx {
		kept[ix] = true
		if i > 0 && s.Idx[i-1] >= ix {
			t.Fatal("indices not strictly ascending")
		}
		if a := math.Abs(s.Vals[i]); a < minKept {
			minKept = a
		}
		if w[ix] != s.Vals[i] {
			t.Fatalf("value mismatch at %d", ix)
		}
	}
	for i, v := range w {
		if !kept[int32(i)] && math.Abs(v) > minKept {
			t.Fatalf("dropped |w[%d]| = %g > min kept %g", i, math.Abs(v), minKept)
		}
	}
	// Reconstruction error per coordinate is bounded by the largest
	// dropped magnitude.
	dec := s.Dense(nil)
	for i := range w {
		if e := math.Abs(w[i] - dec[i]); e > b.MaxCoordErr {
			t.Fatalf("coord %d err %g > bound %g", i, e, b.MaxCoordErr)
		}
	}
}

func TestTopKQuantBound(t *testing.T) {
	w := randVec(300, 9)
	s, b, err := Sparsify(w, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	dec := s.Dense(nil)
	limit := b.MaxCoordErr * (1 + 1e-12)
	for i := range w {
		if e := math.Abs(w[i] - dec[i]); e > limit {
			t.Fatalf("coord %d err %g > bound %g", i, e, b.MaxCoordErr)
		}
	}
	if b.MeasuredMaxErr > limit {
		t.Fatalf("measured %g > bound %g", b.MeasuredMaxErr, b.MaxCoordErr)
	}
}

// TestEmptyAndAllZero: degenerate vectors compress to canonical empty /
// zero blocks and reconstruct exactly.
func TestEmptyAndAllZero(t *testing.T) {
	for _, width := range []int{1, 2} {
		q, b, err := Quantize(nil, width, nil)
		if err != nil {
			t.Fatal(err)
		}
		if q.Scale != 0 || len(q.Q) != 0 || b != (Bound{}) {
			t.Fatalf("empty: %+v %+v", q, b)
		}
		zeros := make([]float64, 16)
		q, b, err = Quantize(zeros, width, nil)
		if err != nil {
			t.Fatal(err)
		}
		if q.Scale != 0 {
			t.Fatalf("all-zero: scale %g", q.Scale)
		}
		for _, s := range q.Q {
			if s != 0 {
				t.Fatal("all-zero: nonzero step")
			}
		}
		if b.MeasuredMaxErr != 0 || b.MaxCoordErr != 0 {
			t.Fatalf("all-zero: bound %+v", b)
		}
		dec := Dequantize(q, nil)
		if !reflect.DeepEqual(dec, zeros) {
			t.Fatal("all-zero: reconstruction not zero")
		}
	}
	s, _, err := Sparsify(nil, 5, 0)
	if err != nil || s.Dim != 0 || len(s.Idx) != 0 {
		t.Fatalf("empty topk: %+v %v", s, err)
	}
	s, _, err = Sparsify(make([]float64, 8), 3, 0)
	if err != nil || len(s.Idx) != 3 {
		t.Fatalf("zero topk: %+v %v", s, err)
	}
	if dec := s.Dense(nil); !reflect.DeepEqual(dec, make([]float64, 8)) {
		t.Fatal("zero topk: reconstruction not zero")
	}
}

// TestConfigMessageBytes cross-checks the closed-form accounting against
// the wire encoder: MessageBytes must equal the encoded block, and the
// full frame must equal wire's frame-size closed forms.
func TestConfigMessageBytes(t *testing.T) {
	w := randVec(1000, 5)
	env := wire.MeshMessage{From: 0, To: 1, Kind: "fedavg/download"}
	for _, cfg := range []Config{
		{Scheme: Quant8}, {Scheme: Quant16},
		{Scheme: TopK, Frac: 0.1}, {Scheme: TopKQuant8, Frac: 0.25}, {Scheme: TopKQuant16, Frac: 0.017},
	} {
		d, err := cfg.Compress(w)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := d.EncodedBytes(), cfg.MessageBytes(len(w)); got != want {
			t.Fatalf("%v: EncodedBytes %d != MessageBytes %d", cfg, got, want)
		}
		frame := d.AppendFrame(nil, env)
		wantFrame := 0
		if d.Quant != nil {
			wantFrame = wire.QuantFrameSize(env.Kind, d.Quant.Width, len(d.Quant.Q))
		} else {
			wantFrame = wire.SparseFrameSize(env.Kind, d.Sparse.Width, len(d.Sparse.Idx))
		}
		if len(frame) != wantFrame {
			t.Fatalf("%v: frame %dB, closed form %dB", cfg, len(frame), wantFrame)
		}
		// Compression must actually compress at this dimension.
		if d.EncodedBytes() >= int64(8*len(w)) {
			t.Fatalf("%v: %dB not smaller than float64 %dB", cfg, d.EncodedBytes(), 8*len(w))
		}
	}
	if (Config{}).MessageBytes(100) != 800 {
		t.Fatal("scheme none must charge 8·dim")
	}
}

func TestConfigValidateAndParse(t *testing.T) {
	if err := (Config{Scheme: Scheme(99)}).Validate(); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if err := (Config{Scheme: TopK, Frac: 1.5}).Validate(); err == nil {
		t.Fatal("bad fraction accepted")
	}
	if _, err := (Config{}).Compress([]float64{1}); err == nil {
		t.Fatal("Compress with scheme none must error")
	}
	for _, s := range []Scheme{None, Quant8, Quant16, TopK, TopKQuant8, TopKQuant16} {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("zstd"); err == nil {
		t.Fatal("unknown scheme parsed")
	}
	// Kept: fraction rounding, floor of 1, clamp to dim.
	c := Config{Scheme: TopK, Frac: 0.1}
	if c.Kept(1000) != 100 || c.Kept(4) != 1 || c.Kept(0) != 0 {
		t.Fatalf("Kept: %d %d %d", c.Kept(1000), c.Kept(4), c.Kept(0))
	}
	if (Config{Scheme: TopK}).Kept(1000) != 100 {
		t.Fatal("default fraction must be 0.1")
	}
}
