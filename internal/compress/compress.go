// Package compress implements deterministic lossy compression for model
// delta vectors: fixed-point quantization (int8/int16 steps against a
// per-tensor scale) and top-k sparsification (only the k
// largest-magnitude coordinates travel), in the wire-codec block
// layouts of internal/wire (KindDeltaQuant / KindDeltaSparse).
//
// The paper's cost model charges every distribution message 8·|w| bytes
// because the transports ship full-fat float64 vectors; these kernels
// shrink that unit to width·|w| (+13 bytes of block header) or to
// (4+width)·k for a top-k message, which is what makes the Eq. 4/5/10
// distribution terms cheap on the path to large N (see
// costmodel.DistributionBytes and DESIGN.md §12).
//
// Determinism contract: every kernel is bit-identical at any worker
// count. Elementwise transforms (quantize, dequantize, gather) fan out
// over the shared tensor worker pool; reductions whose result depends
// on summation order (error accounting) and the top-k selection run
// serially, so no output ever depends on how the pool split the work.
// Compressing the same vector twice — on any machine, at any
// tensor.SetParallelism setting — yields the same bytes.
package compress

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
	"repro/internal/wire"
)

// Quantization widths, in bytes per element, and their step ranges.
// Width 1 clamps steps to ±127 (not −128) so the range is symmetric and
// the per-coordinate error bound scale/2 holds at both extremes.
const (
	maxQ8  = 127
	maxQ16 = 32767
)

// Bound is the reconstruction-error accounting of one compression:
// the guaranteed per-coordinate bound implied by the scheme parameters
// plus the errors actually measured against the input vector. All
// fields are deterministic (the measured reductions run serially in
// ascending index order).
type Bound struct {
	// MaxCoordErr is the guaranteed per-coordinate reconstruction
	// error: scale/2 for quantization; for top-k, the magnitude of the
	// largest dropped coordinate (plus scale/2 when the kept values are
	// quantized too).
	MaxCoordErr float64
	// MeasuredMaxErr is max_i |w_i − decode(w)_i| over the whole vector.
	MeasuredMaxErr float64
	// MeasuredL2Err is ‖w − decode(w)‖₂.
	MeasuredL2Err float64
	// Kept and Dim are the surviving-coordinate count and the original
	// dimension (Kept == Dim for dense quantization).
	Kept, Dim int
}

// maxAbs returns max_i |w_i| (0 for an empty vector). Exact max is
// order-independent, so the panel split cannot change the result; the
// panel maxima are combined in ascending panel order regardless.
func maxAbs(w []float64) float64 {
	m := 0.0
	for _, v := range w {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Quantize compresses w into a dense fixed-point block: width 1 (int8
// steps) or 2 (int16 steps), scale = maxAbs(w)/maxQ. Element i encodes
// to round(w_i/scale), so the reconstruction scale·q_i is within
// scale/2 of w_i in every coordinate. An all-zero (or empty) vector
// encodes with scale 0 and all-zero steps. q is reused as the step
// scratch when its capacity suffices.
func Quantize(w []float64, width int, q []int16) (wire.QuantDelta, Bound, error) {
	maxStep := 0.0
	switch width {
	case 1:
		maxStep = maxQ8
	case 2:
		maxStep = maxQ16
	default:
		return wire.QuantDelta{}, Bound{}, fmt.Errorf("compress: quant width %d, want 1 or 2", width)
	}
	if cap(q) < len(w) {
		q = make([]int16, len(w))
	}
	q = q[:len(w)]
	scale := maxAbs(w) / maxStep
	if scale == 0 {
		for i := range q {
			q[i] = 0
		}
		d := wire.QuantDelta{Width: width, Scale: 0, Q: q}
		return d, Bound{Kept: len(w), Dim: len(w)}, nil
	}
	inv := 1 / scale
	tensor.ParallelRows(len(w), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := math.Round(w[i] * inv)
			if s > maxStep {
				s = maxStep
			} else if s < -maxStep {
				s = -maxStep
			}
			q[i] = int16(s)
		}
	})
	d := wire.QuantDelta{Width: width, Scale: scale, Q: q}
	b := Bound{MaxCoordErr: scale / 2, Kept: len(w), Dim: len(w)}
	for i, v := range w {
		e := math.Abs(v - scale*float64(q[i]))
		if e > b.MeasuredMaxErr {
			b.MeasuredMaxErr = e
		}
		b.MeasuredL2Err += e * e
	}
	b.MeasuredL2Err = math.Sqrt(b.MeasuredL2Err)
	return d, b, nil
}

// Dequantize reconstructs a quantized block into dst (reused when its
// capacity suffices), fanning the elementwise scale-multiply out over
// the worker pool. It is the pooled equivalent of wire.QuantDelta.Dense
// and bit-identical to it at any worker count.
func Dequantize(q wire.QuantDelta, dst []float64) []float64 {
	if cap(dst) < len(q.Q) {
		dst = make([]float64, len(q.Q))
	}
	dst = dst[:len(q.Q)]
	tensor.ParallelRows(len(q.Q), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = q.Scale * float64(q.Q[i])
		}
	})
	return dst
}

// Sparsify reduces w to its k largest-magnitude coordinates, ties broken
// by lowest index (the selection order sorts by descending magnitude
// then ascending index, so the result is a deterministic function of w
// alone). width 0 keeps the surviving values in full float64 precision;
// width 1 or 2 additionally quantizes them with Quantize's scheme over
// the kept values. k is clamped to [0, len(w)].
func Sparsify(w []float64, k, width int) (wire.SparseDelta, Bound, error) {
	if width != 0 && width != 1 && width != 2 {
		return wire.SparseDelta{}, Bound{}, fmt.Errorf("compress: sparse width %d, want 0, 1 or 2", width)
	}
	dim := len(w)
	if k < 0 {
		k = 0
	}
	if k > dim {
		k = dim
	}
	order := make([]int32, dim)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := math.Abs(w[order[a]]), math.Abs(w[order[b]])
		if va != vb {
			return va > vb
		}
		return order[a] < order[b]
	})
	idx := append([]int32(nil), order[:k]...)
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })

	s := wire.SparseDelta{Dim: dim, Idx: idx, Width: width}
	kept := make([]float64, k)
	tensor.ParallelRows(k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			kept[i] = w[idx[i]]
		}
	})
	b := Bound{Kept: k, Dim: dim}
	if k < dim {
		// The largest dropped magnitude bounds every zeroed coordinate.
		b.MaxCoordErr = math.Abs(w[order[k]])
	}
	switch width {
	case 0:
		s.Vals = kept
		// Dropped coordinates reconstruct to zero; kept ones are exact.
		for _, i := range order[k:] {
			e := math.Abs(w[i])
			if e > b.MeasuredMaxErr {
				b.MeasuredMaxErr = e
			}
			b.MeasuredL2Err += e * e
		}
		b.MeasuredL2Err = math.Sqrt(b.MeasuredL2Err)
	default:
		q, qb, err := Quantize(kept, width, nil)
		if err != nil {
			return wire.SparseDelta{}, Bound{}, err
		}
		s.Scale, s.Q = q.Scale, q.Q
		b.MaxCoordErr += qb.MaxCoordErr
		// Measured over the full vector: dropped coordinates err by
		// |w_i|, kept ones by their quantization error.
		for _, i := range order[k:] {
			e := math.Abs(w[i])
			if e > b.MeasuredMaxErr {
				b.MeasuredMaxErr = e
			}
			b.MeasuredL2Err += e * e
		}
		for i := range kept {
			e := math.Abs(kept[i] - s.Scale*float64(s.Q[i]))
			if e > b.MeasuredMaxErr {
				b.MeasuredMaxErr = e
			}
			b.MeasuredL2Err += e * e
		}
		b.MeasuredL2Err = math.Sqrt(b.MeasuredL2Err)
	}
	return s, b, nil
}
