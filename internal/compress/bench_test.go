package compress

import (
	"testing"

	"repro/internal/wire"
)

// The encode benchmarks report the full wire frame size as B/op (via
// ReportMetric after the loop — ResetTimer deletes user metrics —
// overriding the allocator column), so the bench-check pair
// bytes:EncodeDeltaQuant8=EncodeDeltaFloat64@0.25 gates the actual
// on-the-wire ratio, not allocator noise.

const benchDim = 100_000

var benchEnv = wire.MeshMessage{From: 3, To: 7, Kind: "fedavg/download"}

func BenchmarkEncodeDeltaFloat64(b *testing.B) {
	w := randVec(benchDim, 42)
	m := benchEnv
	m.Payload = w
	buf := wire.AppendMeshFrame(nil, m)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendMeshFrame(buf[:0], m)
	}
	b.ReportMetric(float64(len(buf)), "B/op")
}

func benchmarkEncodeQuant(b *testing.B, width int) {
	w := randVec(benchDim, 42)
	q, _, err := Quantize(w, width, nil)
	if err != nil {
		b.Fatal(err)
	}
	buf := wire.AppendQuantFrame(nil, benchEnv, q)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, _, err = Quantize(w, width, q.Q)
		if err != nil {
			b.Fatal(err)
		}
		buf = wire.AppendQuantFrame(buf[:0], benchEnv, q)
	}
	b.ReportMetric(float64(len(buf)), "B/op")
}

func BenchmarkEncodeDeltaQuant8(b *testing.B)  { benchmarkEncodeQuant(b, 1) }
func BenchmarkEncodeDeltaQuant16(b *testing.B) { benchmarkEncodeQuant(b, 2) }

func benchmarkEncodeSparse(b *testing.B, frac float64, width int) {
	w := randVec(benchDim, 42)
	k := int(frac * benchDim)
	s, _, err := Sparsify(w, k, width)
	if err != nil {
		b.Fatal(err)
	}
	buf := wire.AppendSparseFrame(nil, benchEnv, s)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _, err = Sparsify(w, k, width)
		if err != nil {
			b.Fatal(err)
		}
		buf = wire.AppendSparseFrame(buf[:0], benchEnv, s)
	}
	b.ReportMetric(float64(len(buf)), "B/op")
}

func BenchmarkEncodeDeltaSparse10(b *testing.B)   { benchmarkEncodeSparse(b, 0.10, 0) }
func BenchmarkEncodeDeltaSparse10Q8(b *testing.B) { benchmarkEncodeSparse(b, 0.10, 1) }

func BenchmarkDequantize(b *testing.B) {
	w := randVec(benchDim, 42)
	q, _, err := Quantize(w, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, benchDim)
	b.SetBytes(int64(8 * benchDim))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Dequantize(q, dst)
	}
	_ = dst
}
