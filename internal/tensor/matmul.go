package tensor

import "fmt"

// Matrix multiplication comes in two kernel families, selected by
// operand size:
//
//   - Small operands (< parallelFlops multiply-adds) use the original
//     single-threaded ikj kernels. These keep the av == 0 skip: the
//     small regime is dominated by the aggregation protocols' vectors
//     and test fixtures, where sparse rows (zero-padded shares, one-hot
//     fixtures) are common enough that the branch pays for itself.
//   - Large operands use blocked row-panel kernels fanned out across
//     the package worker pool. Here the operands are dense CNN
//     activations (im2col matrices, gradients), where a zero test on
//     every element is a mispredicted branch per multiply, not a win —
//     the blocked kernels have no skip.
//
// Every kernel accumulates each output element in ascending order of
// the shared dimension, so the two families and any worker count
// produce bit-identical results (modulo the sign of zero, which Go's
// float64 comparison ignores).

// parallelFlops is the multiply-add count above which a matmul switches
// to the blocked parallel kernels. Below it, fan-out overhead (token
// accounting, goroutine launch) exceeds the work.
const parallelFlops = 1 << 20

// kBlock tiles the shared dimension of the blocked kernels so the
// touched panel of B (kBlock·n floats) stays cache-resident while a row
// panel of A streams past it.
const kBlock = 256

func checkMatMul(a, b *Tensor, kind string) error {
	if a.Rank() != 2 || b.Rank() != 2 {
		return fmt.Errorf("%w: %s requires rank-2 operands, got %v and %v", ErrShape, kind, a.shape, b.shape)
	}
	return nil
}

func checkDst(dst *Tensor, m, n int, kind string) error {
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: %s destination %v, want [%d %d]", ErrShape, kind, dst.shape, m, n)
	}
	return nil
}

// MatMul computes C = A·B for 2-D tensors A (m×k) and B (k×n).
func MatMul(a, b *Tensor) (*Tensor, error) {
	if err := checkMatMul(a, b, "matmul"); err != nil {
		return nil, err
	}
	c := New(a.shape[0], b.shape[1])
	if err := MatMulInto(c, a, b); err != nil {
		return nil, err
	}
	return c, nil
}

// MatMulInto computes C = A·B into dst, which must be m×n. dst may hold
// stale data (it is overwritten) but must not alias a or b.
func MatMulInto(dst, a, b *Tensor) error {
	if err := checkMatMul(a, b, "matmul"); err != nil {
		return err
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return fmt.Errorf("%w: matmul %v × %v", ErrShape, a.shape, b.shape)
	}
	if err := checkDst(dst, m, n, "matmul"); err != nil {
		return err
	}
	if 2*m*k*n >= parallelFlops {
		parallelRows(m, func(lo, hi int) {
			matMulPanel(dst.data, a.data, b.data, lo, hi, k, n)
		})
		return nil
	}
	// ikj loop order keeps the inner loops sequential over both B and C
	// rows, which matters for the im2col-based convolutions.
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		crow := dst.data[i*n : (i+1)*n]
		for j := range crow {
			crow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return nil
}

// matMulPanel computes rows [lo, hi) of C = A·B with the shared
// dimension tiled in kBlock slabs.
func matMulPanel(c, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		crow := c[i*n : (i+1)*n]
		for j := range crow {
			crow[j] = 0
		}
	}
	for p0 := 0; p0 < k; p0 += kBlock {
		p1 := p0 + kBlock
		if p1 > k {
			p1 = k
		}
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			crow := c[i*n : (i+1)*n]
			for p := p0; p < p1; p++ {
				av := arow[p]
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ·B for A (k×m) and B (k×n) without
// materializing the transpose.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if err := checkMatMul(a, b, "matmulTransA"); err != nil {
		return nil, err
	}
	c := New(a.shape[1], b.shape[1])
	if err := MatMulTransAAcc(c, a, b); err != nil {
		return nil, err
	}
	return c, nil
}

// MatMulTransAInto computes C = Aᵀ·B into dst (m×n), overwriting it.
func MatMulTransAInto(dst, a, b *Tensor) error {
	if err := checkMatMul(a, b, "matmulTransA"); err != nil {
		return err
	}
	if err := checkDst(dst, a.shape[1], b.shape[1], "matmulTransA"); err != nil {
		return err
	}
	dst.Zero()
	return MatMulTransAAcc(dst, a, b)
}

// MatMulTransAAcc accumulates C += Aᵀ·B into dst (m×n). This is the
// gradient-accumulation primitive: layers add weight gradients straight
// into the parameter's gradient tensor without a scratch product.
func MatMulTransAAcc(dst, a, b *Tensor) error {
	if err := checkMatMul(a, b, "matmulTransA"); err != nil {
		return err
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return fmt.Errorf("%w: matmulTransA %v × %v", ErrShape, a.shape, b.shape)
	}
	if err := checkDst(dst, m, n, "matmulTransA"); err != nil {
		return err
	}
	if 2*m*k*n >= parallelFlops && m > 1 {
		parallelRows(m, func(lo, hi int) {
			matMulTransAPanel(dst.data, a.data, b.data, lo, hi, k, m, n)
		})
		return nil
	}
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := dst.data[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return nil
}

// matMulTransAPanel accumulates rows [lo, hi) of C += Aᵀ·B. Owning
// whole output rows keeps panels write-disjoint; accumulation stays in
// ascending p order per element, matching the serial kernel bit for bit.
func matMulTransAPanel(c, a, b []float64, lo, hi, k, m, n int) {
	for p0 := 0; p0 < k; p0 += kBlock {
		p1 := p0 + kBlock
		if p1 > k {
			p1 = k
		}
		for i := lo; i < hi; i++ {
			crow := c[i*n : (i+1)*n]
			for p := p0; p < p1; p++ {
				av := a[p*m+i]
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// MatMulTransB computes C = A·Bᵀ for A (m×k) and B (n×k) without
// materializing the transpose.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if err := checkMatMul(a, b, "matmulTransB"); err != nil {
		return nil, err
	}
	c := New(a.shape[0], b.shape[0])
	if err := MatMulTransBInto(c, a, b); err != nil {
		return nil, err
	}
	return c, nil
}

// MatMulTransBInto computes C = A·Bᵀ into dst (m×n), overwriting it.
func MatMulTransBInto(dst, a, b *Tensor) error {
	if err := checkMatMul(a, b, "matmulTransB"); err != nil {
		return err
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		return fmt.Errorf("%w: matmulTransB %v × %v", ErrShape, a.shape, b.shape)
	}
	if err := checkDst(dst, m, n, "matmulTransB"); err != nil {
		return err
	}
	if 2*m*k*n >= parallelFlops {
		parallelRows(m, func(lo, hi int) {
			matMulTransBPanel(dst.data, a.data, b.data, lo, hi, k, n)
		})
		return nil
	}
	matMulTransBPanel(dst.data, a.data, b.data, 0, m, k, n)
	return nil
}

// matMulTransBPanel computes rows [lo, hi) of C = A·Bᵀ as row-dot
// products; each output element is one sequential k-length reduction,
// so there is nothing to zero and nothing to tile.
func matMulTransBPanel(c, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
}
