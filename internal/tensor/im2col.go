package tensor

import "fmt"

// Im2Col lowers a batch of images to a matrix so that a convolution becomes
// a single matrix multiplication.
//
// Input x has shape [batch, channels, height, width]. The result has shape
// [batch·outH·outW, channels·kh·kw] where outH = (height+2·pad−kh)/stride+1
// and similarly for outW. Padding is zero-padding.
func Im2Col(x *Tensor, kh, kw, stride, pad int) (*Tensor, int, int, error) {
	if x.Rank() != 4 {
		return nil, 0, 0, fmt.Errorf("%w: im2col requires rank 4, got %v", ErrShape, x.shape)
	}
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		return nil, 0, 0, fmt.Errorf("%w: im2col kernel %dx%d too large for %dx%d input with pad %d", ErrShape, kh, kw, h, w, pad)
	}
	cols := New(b*outH*outW, c*kh*kw)
	colStride := c * kh * kw
	for bi := 0; bi < b; bi++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := ((bi*outH+oy)*outW + ox) * colStride
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							dst := row + (ci*kh+ky)*kw + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								cols.data[dst] = x.data[((bi*c+ci)*h+iy)*w+ix]
							}
						}
					}
				}
			}
		}
	}
	return cols, outH, outW, nil
}

// Col2Im accumulates a column matrix (as produced by Im2Col for an input of
// shape [batch, channels, height, width]) back into image space. Overlapping
// patches sum, which is exactly the gradient of Im2Col.
func Col2Im(cols *Tensor, batch, channels, height, width, kh, kw, stride, pad int) (*Tensor, error) {
	outH := (height+2*pad-kh)/stride + 1
	outW := (width+2*pad-kw)/stride + 1
	colStride := channels * kh * kw
	want := batch * outH * outW
	if cols.Rank() != 2 || cols.shape[0] != want || cols.shape[1] != colStride {
		return nil, fmt.Errorf("%w: col2im got %v, want [%d %d]", ErrShape, cols.shape, want, colStride)
	}
	x := New(batch, channels, height, width)
	for bi := 0; bi < batch; bi++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := ((bi*outH+oy)*outW + ox) * colStride
				for ci := 0; ci < channels; ci++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= height {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= width {
								continue
							}
							x.data[((bi*channels+ci)*height+iy)*width+ix] += cols.data[row+(ci*kh+ky)*kw+kx]
						}
					}
				}
			}
		}
	}
	return x, nil
}
