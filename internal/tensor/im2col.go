package tensor

import "fmt"

// Im2ColShape returns the output spatial extent and column-matrix shape
// of an Im2Col lowering of a [batch, channels, height, width] input.
func Im2ColShape(b, c, h, w, kh, kw, stride, pad int) (outH, outW, rows, cols int) {
	outH = (h+2*pad-kh)/stride + 1
	outW = (w+2*pad-kw)/stride + 1
	return outH, outW, b * outH * outW, c * kh * kw
}

// Im2Col lowers a batch of images to a matrix so that a convolution becomes
// a single matrix multiplication.
//
// Input x has shape [batch, channels, height, width]. The result has shape
// [batch·outH·outW, channels·kh·kw] where outH = (height+2·pad−kh)/stride+1
// and similarly for outW. Padding is zero-padding.
func Im2Col(x *Tensor, kh, kw, stride, pad int) (*Tensor, int, int, error) {
	if x.Rank() != 4 {
		return nil, 0, 0, fmt.Errorf("%w: im2col requires rank 4, got %v", ErrShape, x.shape)
	}
	b, c := x.shape[0], x.shape[1]
	outH, outW, rows, colStride := Im2ColShape(b, c, x.shape[2], x.shape[3], kh, kw, stride, pad)
	if outH <= 0 || outW <= 0 {
		return nil, 0, 0, fmt.Errorf("%w: im2col kernel %dx%d too large for %dx%d input with pad %d", ErrShape, kh, kw, x.shape[2], x.shape[3], pad)
	}
	cols := New(rows, colStride)
	if _, _, err := Im2ColInto(cols, x, kh, kw, stride, pad); err != nil {
		return nil, 0, 0, err
	}
	return cols, outH, outW, nil
}

// Im2ColInto is Im2Col writing into a caller-owned column matrix (as
// obtained from a Scratch), so conv layers stop allocating a fresh
// b·outH·outW × c·kh·kw matrix every forward pass. Every element of dst
// is overwritten (padding positions are written as zeros), so dst may
// hold stale data.
func Im2ColInto(dst, x *Tensor, kh, kw, stride, pad int) (int, int, error) {
	if x.Rank() != 4 {
		return 0, 0, fmt.Errorf("%w: im2col requires rank 4, got %v", ErrShape, x.shape)
	}
	b, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	outH, outW, rows, colStride := Im2ColShape(b, c, h, w, kh, kw, stride, pad)
	if outH <= 0 || outW <= 0 {
		return 0, 0, fmt.Errorf("%w: im2col kernel %dx%d too large for %dx%d input with pad %d", ErrShape, kh, kw, h, w, pad)
	}
	if dst.Rank() != 2 || dst.shape[0] != rows || dst.shape[1] != colStride {
		return 0, 0, fmt.Errorf("%w: im2col destination %v, want [%d %d]", ErrShape, dst.shape, rows, colStride)
	}
	dd, xd := dst.data, x.data
	for bi := 0; bi < b; bi++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := ((bi*outH+oy)*outW + ox) * colStride
				for ci := 0; ci < c; ci++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							dst := row + (ci*kh+ky)*kw + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								dd[dst] = xd[((bi*c+ci)*h+iy)*w+ix]
							} else {
								dd[dst] = 0
							}
						}
					}
				}
			}
		}
	}
	return outH, outW, nil
}

// Col2Im accumulates a column matrix (as produced by Im2Col for an input of
// shape [batch, channels, height, width]) back into image space. Overlapping
// patches sum, which is exactly the gradient of Im2Col.
func Col2Im(cols *Tensor, batch, channels, height, width, kh, kw, stride, pad int) (*Tensor, error) {
	x := New(batch, channels, height, width)
	if err := Col2ImInto(x, cols, kh, kw, stride, pad); err != nil {
		return nil, err
	}
	return x, nil
}

// Col2ImInto is Col2Im accumulating into a caller-owned image tensor of
// shape [batch, channels, height, width]; dst is zeroed first, so it
// may hold stale data.
func Col2ImInto(dst, cols *Tensor, kh, kw, stride, pad int) error {
	if dst.Rank() != 4 {
		return fmt.Errorf("%w: col2im destination requires rank 4, got %v", ErrShape, dst.shape)
	}
	batch, channels, height, width := dst.shape[0], dst.shape[1], dst.shape[2], dst.shape[3]
	outH, outW, rows, colStride := Im2ColShape(batch, channels, height, width, kh, kw, stride, pad)
	if cols.Rank() != 2 || cols.shape[0] != rows || cols.shape[1] != colStride {
		return fmt.Errorf("%w: col2im got %v, want [%d %d]", ErrShape, cols.shape, rows, colStride)
	}
	dst.Zero()
	dd, cd := dst.data, cols.data
	for bi := 0; bi < batch; bi++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				row := ((bi*outH+oy)*outW + ox) * colStride
				for ci := 0; ci < channels; ci++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= height {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= width {
								continue
							}
							dd[((bi*channels+ci)*height+iy)*width+ix] += cd[row+(ci*kh+ky)*kw+kx]
						}
					}
				}
			}
		}
	}
	return nil
}
