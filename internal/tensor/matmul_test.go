package tensor

import (
	"math/rand"
	"testing"
)

// forceParallelism pins the worker budget for a test and restores it.
func forceParallelism(t *testing.T, n int) {
	t.Helper()
	old := Parallelism()
	SetParallelism(n)
	t.Cleanup(func() { SetParallelism(old) })
}

// refMatMul is a naive triple loop used as the ground truth for every
// kernel variant.
func refMatMul(a, b *Tensor, transA, transB bool) *Tensor {
	var m, k, n int
	at := func(i, p int) float64 { return a.data[i*a.shape[1]+p] }
	bt := func(p, j int) float64 { return b.data[p*b.shape[1]+j] }
	if transA {
		k, m = a.shape[0], a.shape[1]
		at = func(i, p int) float64 { return a.data[p*a.shape[1]+i] }
	} else {
		m, k = a.shape[0], a.shape[1]
	}
	if transB {
		n = b.shape[0]
		bt = func(p, j int) float64 { return b.data[j*b.shape[1]+p] }
	} else {
		n = b.shape[1]
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += at(i, p) * bt(p, j)
			}
			c.data[i*n+j] = s
		}
	}
	return c
}

// shapes covers both the small serial regime and the large parallel
// regime (conv-sized operands comfortably above parallelFlops).
var matmulShapes = []struct{ m, k, n int }{
	{3, 4, 5},
	{17, 31, 7},
	{64, 64, 64},
	{900, 288, 32},  // paper-CNN conv lowering, batch 1
	{1800, 64, 288}, // conv backward dcols slab
}

func TestMatMulVariantsMatchReference(t *testing.T) {
	forceParallelism(t, 1)
	for _, par := range []int{1, 4} {
		rng := rand.New(rand.NewSource(7))
		SetParallelism(par)
		for _, s := range matmulShapes {
			a := randMat(rng, s.m, s.k)
			b := randMat(rng, s.k, s.n)
			got, err := MatMul(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if want := refMatMul(a, b, false, false); !AllClose(got, want, 1e-9) {
				t.Fatalf("par=%d MatMul %v differs from reference", par, s)
			}

			at := randMat(rng, s.k, s.m)
			got, err = MatMulTransA(at, b)
			if err != nil {
				t.Fatal(err)
			}
			if want := refMatMul(at, b, true, false); !AllClose(got, want, 1e-9) {
				t.Fatalf("par=%d MatMulTransA %v differs from reference", par, s)
			}

			bt := randMat(rng, s.n, s.k)
			got, err = MatMulTransB(a, bt)
			if err != nil {
				t.Fatal(err)
			}
			if want := refMatMul(a, bt, false, true); !AllClose(got, want, 1e-9) {
				t.Fatalf("par=%d MatMulTransB %v differs from reference", par, s)
			}
		}
	}
}

// TestMatMulParallelBitIdentical asserts the determinism contract the
// parallel training engine relies on: any worker budget produces
// bit-for-bit identical products.
func TestMatMulParallelBitIdentical(t *testing.T) {
	forceParallelism(t, 1)
	rng := rand.New(rand.NewSource(11))
	a := randMat(rng, 700, 310)
	b := randMat(rng, 310, 130)
	at := randMat(rng, 310, 700)
	bt := randMat(rng, 130, 310)

	serial, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	serialTA, err := MatMulTransA(at, b)
	if err != nil {
		t.Fatal(err)
	}
	serialTB, err := MatMulTransB(a, bt)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 3, 8} {
		SetParallelism(par)
		p, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(serial, p) {
			t.Fatalf("parallelism %d changed MatMul bits", par)
		}
		pTA, err := MatMulTransA(at, b)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(serialTA, pTA) {
			t.Fatalf("parallelism %d changed MatMulTransA bits", par)
		}
		pTB, err := MatMulTransB(a, bt)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(serialTB, pTB) {
			t.Fatalf("parallelism %d changed MatMulTransB bits", par)
		}
	}
}

func TestMatMulIntoReusesStaleBuffers(t *testing.T) {
	forceParallelism(t, 4)
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 120, 90)
	b := randMat(rng, 90, 110)
	want, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dst := New(120, 110)
	dst.Fill(123.456) // stale garbage must be overwritten
	if err := MatMulInto(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if !Equal(dst, want) {
		t.Fatal("MatMulInto with stale dst differs from MatMul")
	}

	bt := randMat(rng, 110, 90)
	wantTB, err := MatMulTransB(a, bt)
	if err != nil {
		t.Fatal(err)
	}
	dst.Fill(-9)
	if err := MatMulTransBInto(dst, a, bt); err != nil {
		t.Fatal(err)
	}
	if !Equal(dst, wantTB) {
		t.Fatal("MatMulTransBInto with stale dst differs from MatMulTransB")
	}

	at := randMat(rng, 90, 120)
	wantTA, err := MatMulTransA(at, b)
	if err != nil {
		t.Fatal(err)
	}
	dst.Fill(7)
	if err := MatMulTransAInto(dst, at, b); err != nil {
		t.Fatal(err)
	}
	if !Equal(dst, wantTA) {
		t.Fatal("MatMulTransAInto with stale dst differs from MatMulTransA")
	}
}

func TestMatMulTransAAccAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	at := randMat(rng, 40, 30)
	b := randMat(rng, 40, 20)
	prod, err := MatMulTransA(at, b)
	if err != nil {
		t.Fatal(err)
	}
	acc := New(30, 20)
	acc.Fill(1)
	if err := MatMulTransAAcc(acc, at, b); err != nil {
		t.Fatal(err)
	}
	for i, v := range acc.data {
		if diff := v - (prod.data[i] + 1); diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("acc[%d] = %v, want %v", i, v, prod.data[i]+1)
		}
	}
}

func TestMatMulIntoShapeErrors(t *testing.T) {
	a, b := New(3, 4), New(4, 5)
	if err := MatMulInto(New(3, 6), a, b); err == nil {
		t.Fatal("bad dst accepted")
	}
	if err := MatMulTransAInto(New(3, 5), a, b); err == nil {
		t.Fatal("bad transA dst accepted")
	}
	if err := MatMulTransBInto(New(3, 4), a, New(5, 4)); err == nil {
		t.Fatal("bad transB dst accepted")
	}
	if err := MatMulInto(New(3, 5), a, New(3, 5)); err == nil {
		t.Fatal("inner mismatch accepted")
	}
}

func TestIm2ColIntoMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := New(2, 3, 7, 6)
	for i := range x.data {
		x.data[i] = rng.NormFloat64()
	}
	for _, pad := range []int{0, 1} {
		want, outH, outW, err := Im2Col(x, 3, 3, 1, pad)
		if err != nil {
			t.Fatal(err)
		}
		dst := New(want.shape[0], want.shape[1])
		dst.Fill(42) // padding zeros must be rewritten over stale data
		gotH, gotW, err := Im2ColInto(dst, x, 3, 3, 1, pad)
		if err != nil {
			t.Fatal(err)
		}
		if gotH != outH || gotW != outW {
			t.Fatalf("pad=%d: out %dx%d, want %dx%d", pad, gotH, gotW, outH, outW)
		}
		if !Equal(dst, want) {
			t.Fatalf("pad=%d: Im2ColInto differs from Im2Col", pad)
		}

		wantImg, err := Col2Im(want, 2, 3, 7, 6, 3, 3, 1, pad)
		if err != nil {
			t.Fatal(err)
		}
		img := New(2, 3, 7, 6)
		img.Fill(-5)
		if err := Col2ImInto(img, dst, 3, 3, 1, pad); err != nil {
			t.Fatal(err)
		}
		if !Equal(img, wantImg) {
			t.Fatalf("pad=%d: Col2ImInto differs from Col2Im", pad)
		}
	}
}

func TestScratchReuse(t *testing.T) {
	var s Scratch
	a := s.Get(4, 8)
	if a.Size() != 32 {
		t.Fatalf("size %d", a.Size())
	}
	a.Fill(3)
	if b := s.Get(4, 8); b != a {
		t.Fatal("same shape did not reuse the cached tensor")
	}
	// Smaller request re-slices the same backing array.
	c := s.Get(2, 8)
	if c.Size() != 16 {
		t.Fatalf("size %d", c.Size())
	}
	if &c.data[0] != &a.data[0] {
		t.Fatal("smaller shape did not reuse the backing array")
	}
	if c.data[0] != 3 {
		t.Fatal("scratch should not clear contents")
	}
	// Larger request allocates.
	d := s.Get(16, 16)
	if d.Size() != 256 {
		t.Fatalf("size %d", d.Size())
	}
}

func TestParallelRowsCoversAllRows(t *testing.T) {
	forceParallelism(t, 4)
	for _, rows := range []int{1, 2, 3, 7, 64, 1000} {
		hit := make([]int32, rows)
		parallelRows(rows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hit[i]++
			}
		})
		for i, h := range hit {
			if h != 1 {
				t.Fatalf("rows=%d: row %d visited %d times", rows, i, h)
			}
		}
	}
}
