// Package tensor provides dense float64 tensors and the linear-algebra
// primitives required by the neural-network stack in internal/nn.
//
// Tensors are row-major. The package is deliberately small: it implements
// exactly the operations the paper's CNN (Fig. 5) needs — matrix
// multiplication, elementwise arithmetic, im2col/col2im for convolutions —
// plus the vector arithmetic used by secret sharing and FedAvg, where model
// weights are treated as flat vectors.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Tensor is a dense, row-major float64 tensor.
type Tensor struct {
	shape []int
	data  []float64
}

// ErrShape is returned (or wrapped) when operand shapes are incompatible.
var ErrShape = errors.New("tensor: shape mismatch")

// New creates a zero-filled tensor with the given shape.
// A tensor with no dimensions is a scalar holding one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: %d elements for shape %v (want %d)", ErrShape, len(data), shape, n)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}, nil
}

// MustFromSlice is FromSlice that panics on error; for tests and literals.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// AppendShape appends the tensor's shape to dst and returns the result,
// for hot paths that want to record a shape without Shape's allocation.
func (t *Tensor) AppendShape(dst []int) []int { return append(dst, t.shape...) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying storage. Mutations are visible in the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view sharing storage with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: reshape %v to %v", ErrShape, t.shape, shape)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}, nil
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given indices.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", ix, t.shape[i], i))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// AddInPlace adds o elementwise into t.
func (t *Tensor) AddInPlace(o *Tensor) error {
	if !SameShape(t, o) {
		return fmt.Errorf("%w: add %v and %v", ErrShape, t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] += v
	}
	return nil
}

// SubInPlace subtracts o elementwise from t.
func (t *Tensor) SubInPlace(o *Tensor) error {
	if !SameShape(t, o) {
		return fmt.Errorf("%w: sub %v and %v", ErrShape, t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
	return nil
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float64) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// Add returns a+b as a new tensor.
func Add(a, b *Tensor) (*Tensor, error) {
	c := a.Clone()
	if err := c.AddInPlace(b); err != nil {
		return nil, err
	}
	return c, nil
}

// Sub returns a−b as a new tensor.
func Sub(a, b *Tensor) (*Tensor, error) {
	c := a.Clone()
	if err := c.SubInPlace(b); err != nil {
		return nil, err
	}
	return c, nil
}

// Mul returns the elementwise (Hadamard) product a⊙b.
func Mul(a, b *Tensor) (*Tensor, error) {
	if !SameShape(a, b) {
		return nil, fmt.Errorf("%w: mul %v and %v", ErrShape, a.shape, b.shape)
	}
	c := a.Clone()
	for i, v := range b.data {
		c.data[i] *= v
	}
	return c, nil
}

// Scaled returns s·t as a new tensor.
func Scaled(t *Tensor, s float64) *Tensor {
	c := t.Clone()
	c.Scale(s)
	return c
}

// Apply replaces every element x with f(x), in place.
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Max returns the maximum element; −Inf for an empty tensor.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element; −1 if empty.
func (t *Tensor) ArgMax() int {
	best, bi := math.Inf(-1), -1
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("%w: transpose requires rank 2, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	c := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			c.data[j*m+i] = a.data[i*n+j]
		}
	}
	return c, nil
}

// Equal reports exact elementwise equality.
func Equal(a, b *Tensor) bool {
	if !SameShape(a, b) {
		return false
	}
	for i, v := range a.data {
		if v != b.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports elementwise equality within absolute tolerance tol.
func AllClose(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	if len(t.data) > 64 {
		return fmt.Sprintf("Tensor(shape=%v, size=%d)", t.shape, len(t.data))
	}
	return fmt.Sprintf("Tensor(shape=%v, data=%v)", t.shape, t.data)
}
