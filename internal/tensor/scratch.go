package tensor

// Scratch is a single-slot reusable tensor buffer for hot loops that
// repeatedly need a tensor of the same (or occasionally alternating)
// shape — the per-layer activation and gradient workspaces of the
// training hot path.
//
// Get returns the cached tensor when the shape matches, re-slices the
// cached backing array when only the shape changed but the capacity
// suffices, and allocates otherwise. Contents are NOT cleared: callers
// must fully overwrite (or explicitly zero) what Get returns. A Scratch
// is not safe for concurrent use; give each goroutine-owned layer its
// own.
type Scratch struct {
	t *Tensor
}

// Get returns a tensor of the given shape, reusing the previous
// allocation when possible. The returned tensor stays owned by the
// Scratch: it is only valid until the next Get with a different shape.
func (s *Scratch) Get(shape ...int) *Tensor {
	if s.t != nil && len(s.t.shape) == len(shape) {
		same := true
		for i, d := range shape {
			if s.t.shape[i] != d {
				same = false
				break
			}
		}
		if same {
			return s.t
		}
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	if s.t != nil && cap(s.t.data) >= n {
		sh := make([]int, len(shape))
		copy(sh, shape)
		s.t = &Tensor{shape: sh, data: s.t.data[:n]}
		return s.t
	}
	s.t = New(shape...)
	return s.t
}

// GetLike is Get with the shape of t, without the copy Shape() makes.
func (s *Scratch) GetLike(t *Tensor) *Tensor {
	return s.Get(t.shape...)
}
