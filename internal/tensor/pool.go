package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The package keeps one bounded worker pool shared by every parallel
// kernel. Parallelism is a token budget, not a fixed set of goroutines:
// a kernel that wants to fan out grabs as many spare tokens as it can
// without blocking, runs one chunk per token on a fresh goroutine, and
// computes the remainder inline. Under nesting (parallel client training
// above parallel matmuls) inner kernels simply find no spare tokens and
// run serially, so total compute goroutines stay bounded by the budget
// and the pool can never deadlock.
//
// Work splitting is by disjoint output-row panels and every kernel
// accumulates each output element in the same (ascending shared-index)
// order as its serial counterpart, so results are bit-for-bit identical
// whatever the token budget or the number of tokens actually won.

type workerPool struct {
	// extra counts in-flight borrowed workers; capacity is budget−1
	// (the caller's own goroutine is the implicit first worker).
	extra chan struct{}
}

var pool atomic.Pointer[workerPool]

func init() {
	SetParallelism(runtime.GOMAXPROCS(0))
}

// SetParallelism bounds the number of goroutines (including the caller)
// that a parallel kernel may use; n < 1 is treated as 1 (fully serial).
// The default is GOMAXPROCS at package initialization. The budget is
// global: concurrent kernels share it.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	pool.Store(&workerPool{extra: make(chan struct{}, n-1)})
}

// Parallelism returns the current worker budget.
func Parallelism() int {
	return cap(pool.Load().extra) + 1
}

// ParallelRows runs fn over [0, rows) split into contiguous panels, one
// per worker the caller manages to borrow from the shared pool (plus the
// caller itself). It is the exported entry point for out-of-package
// kernels (compress quantizers, secretshare dividers) that want the same
// token budget and the same determinism contract as the tensor kernels:
// fn must only write state derived from its own row range, and its
// per-row results must not depend on how [0, rows) was split.
func ParallelRows(rows int, fn func(lo, hi int)) {
	parallelRowsCapped(rows, 0, fn)
}

// ParallelRowsN is ParallelRows with an explicit worker ceiling: at most
// maxWorkers goroutines (including the caller) touch the range, however
// large the shared budget is. maxWorkers < 1 means "no extra ceiling".
// Callers whose fn serializes on per-worker state (the multilayer
// engine's pooled mesh/scratch contexts) use it to bound contention
// without shrinking the global budget for everyone else.
func ParallelRowsN(rows, maxWorkers int, fn func(lo, hi int)) {
	parallelRowsCapped(rows, maxWorkers, fn)
}

// parallelRows runs fn over [0, rows) split into contiguous panels, one
// per worker the caller manages to borrow (plus the caller itself).
// With no spare tokens — or a single row — it degrades to fn(0, rows)
// inline. fn must only write state derived from its own row range.
func parallelRows(rows int, fn func(lo, hi int)) {
	parallelRowsCapped(rows, 0, fn)
}

func parallelRowsCapped(rows, maxWorkers int, fn func(lo, hi int)) {
	p := pool.Load()
	want := cap(p.extra)
	if maxWorkers > 0 && maxWorkers-1 < want {
		want = maxWorkers - 1
	}
	if want > rows-1 {
		want = rows - 1
	}
	got := 0
	for got < want {
		select {
		case p.extra <- struct{}{}:
			got++
		default:
			want = 0 // no spare workers; stop asking
		}
	}
	if got == 0 {
		fn(0, rows)
		return
	}
	chunks := got + 1
	var wg sync.WaitGroup
	for c := 1; c < chunks; c++ {
		lo, hi := c*rows/chunks, (c+1)*rows/chunks
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() { <-p.extra }()
			fn(lo, hi)
		}(lo, hi)
	}
	fn(0, rows/chunks)
	wg.Wait()
}
