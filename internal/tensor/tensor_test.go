package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 {
		t.Fatalf("size = %d, want 6", x.Size())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromSliceShapeMismatch(t *testing.T) {
	if _, err := FromSlice([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("want shape error for 3 elements into 2x2")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major: offset of (1,2,3) is 1*12 + 2*4 + 3 = 23.
	if x.Data()[23] != 7.5 {
		t.Fatalf("row-major offset wrong: %v", x.Data())
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeSharesStorage(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y, err := x.Reshape(4)
	if err != nil {
		t.Fatal(err)
	}
	y.Set(99, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("reshape must share storage")
	}
	if _, err := x.Reshape(3); err == nil {
		t.Fatal("want error reshaping 4 elements to 3")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := MustFromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("clone must not share storage")
	}
}

func TestAddSubMulScale(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3}, 3)
	b := MustFromSlice([]float64{4, 5, 6}, 3)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(sum, MustFromSlice([]float64{5, 7, 9}, 3)) {
		t.Fatalf("add = %v", sum)
	}
	diff, _ := Sub(b, a)
	if !Equal(diff, MustFromSlice([]float64{3, 3, 3}, 3)) {
		t.Fatalf("sub = %v", diff)
	}
	prod, _ := Mul(a, b)
	if !Equal(prod, MustFromSlice([]float64{4, 10, 18}, 3)) {
		t.Fatalf("mul = %v", prod)
	}
	s := Scaled(a, 2)
	if !Equal(s, MustFromSlice([]float64{2, 4, 6}, 3)) {
		t.Fatalf("scale = %v", s)
	}
	if _, err := Add(a, New(2)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestReductions(t *testing.T) {
	x := MustFromSlice([]float64{3, -1, 4, 1}, 4)
	if x.Sum() != 7 {
		t.Fatalf("sum = %v", x.Sum())
	}
	if x.Max() != 4 {
		t.Fatalf("max = %v", x.Max())
	}
	if x.ArgMax() != 2 {
		t.Fatalf("argmax = %v", x.ArgMax())
	}
	if got := x.Norm2(); math.Abs(got-math.Sqrt(27)) > 1e-12 {
		t.Fatalf("norm2 = %v", got)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := MustFromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !Equal(c, want) {
		t.Fatalf("matmul = %v, want %v", c, want)
	}
}

func TestMatMulShapeError(t *testing.T) {
	if _, err := MatMul(New(2, 3), New(2, 3)); err == nil {
		t.Fatal("want shape error for 2x3 · 2x3")
	}
	if _, err := MatMul(New(6), New(2, 3)); err == nil {
		t.Fatal("want rank error")
	}
}

func randMat(r *rand.Rand, m, n int) *Tensor {
	t := New(m, n)
	for i := range t.Data() {
		t.Data()[i] = r.NormFloat64()
	}
	return t
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		want, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		at, _ := Transpose(a)
		got1, err := MatMulTransA(at, b)
		if err != nil {
			t.Fatal(err)
		}
		if !AllClose(want, got1, 1e-12) {
			t.Fatalf("MatMulTransA disagrees at trial %d", trial)
		}
		bt, _ := Transpose(b)
		got2, err := MatMulTransB(a, bt)
		if err != nil {
			t.Fatal(err)
		}
		if !AllClose(want, got2, 1e-12) {
			t.Fatalf("MatMulTransB disagrees at trial %d", trial)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randMat(r, 3, 5)
	at, err := Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	att, _ := Transpose(at)
	if !Equal(a, att) {
		t.Fatal("transpose twice must be identity")
	}
	if _, err := Transpose(New(2, 2, 2)); err == nil {
		t.Fatal("want rank error")
	}
}

// Property: matmul distributes over addition, (A+B)·C = A·C + B·C.
func TestMatMulDistributesOverAdd(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		m, k, n := 1+rr.Intn(6), 1+rr.Intn(6), 1+rr.Intn(6)
		a, b, c := randMat(rr, m, k), randMat(rr, m, k), randMat(rr, k, n)
		ab, _ := Add(a, b)
		left, _ := MatMul(ab, c)
		ac, _ := MatMul(a, c)
		bc, _ := MatMul(b, c)
		right, _ := Add(ac, bc)
		return AllClose(left, right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestApplyFill(t *testing.T) {
	x := MustFromSlice([]float64{1, 4, 9}, 3)
	x.Apply(math.Sqrt)
	if !AllClose(x, MustFromSlice([]float64{1, 2, 3}, 3), 1e-12) {
		t.Fatalf("apply = %v", x)
	}
	x.Fill(7)
	if x.Sum() != 21 {
		t.Fatal("fill failed")
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("zero failed")
	}
}

func TestAllCloseTolerance(t *testing.T) {
	a := MustFromSlice([]float64{1}, 1)
	b := MustFromSlice([]float64{1.0005}, 1)
	if !AllClose(a, b, 1e-3) {
		t.Fatal("want close at 1e-3")
	}
	if AllClose(a, b, 1e-6) {
		t.Fatal("want not close at 1e-6")
	}
	if AllClose(a, New(2), 1e9) != false {
		t.Fatal("different shapes are never close")
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is the identity layout.
	x := MustFromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	cols, oh, ow, err := Im2Col(x, 1, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oh != 2 || ow != 2 {
		t.Fatalf("out dims = %d,%d", oh, ow)
	}
	if !Equal(cols, MustFromSlice([]float64{1, 2, 3, 4}, 4, 1)) {
		t.Fatalf("cols = %v", cols)
	}
}

func TestIm2ColKnownPatch(t *testing.T) {
	// 3x3 image, 2x2 kernel, stride 1, no pad → 4 patches.
	x := MustFromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	cols, oh, ow, err := Im2Col(x, 2, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if oh != 2 || ow != 2 {
		t.Fatalf("out dims = %d,%d", oh, ow)
	}
	want := MustFromSlice([]float64{
		1, 2, 4, 5,
		2, 3, 5, 6,
		4, 5, 7, 8,
		5, 6, 8, 9,
	}, 4, 4)
	if !Equal(cols, want) {
		t.Fatalf("cols = %v, want %v", cols, want)
	}
}

func TestIm2ColPadding(t *testing.T) {
	x := MustFromSlice([]float64{5}, 1, 1, 1, 1)
	cols, oh, ow, err := Im2Col(x, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if oh != 1 || ow != 1 {
		t.Fatalf("out dims = %d,%d", oh, ow)
	}
	// Only the center of the 3x3 window hits the single pixel.
	if cols.Sum() != 5 || cols.At(0, 4) != 5 {
		t.Fatalf("cols = %v", cols)
	}
}

func TestIm2ColKernelTooLarge(t *testing.T) {
	x := New(1, 1, 2, 2)
	if _, _, _, err := Im2Col(x, 3, 3, 1, 0); err == nil {
		t.Fatal("want error for kernel larger than padded input")
	}
	if _, _, _, err := Im2Col(New(2, 2), 1, 1, 1, 0); err == nil {
		t.Fatal("want rank error")
	}
}

// Property: col2im(im2col(x)) with non-overlapping stride equals x.
func TestCol2ImInverseWhenNonOverlapping(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x := New(2, 3, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64()
	}
	cols, _, _, err := Im2Col(x, 2, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Col2Im(cols, 2, 3, 4, 4, 2, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !AllClose(x, back, 1e-12) {
		t.Fatal("col2im must invert im2col for non-overlapping patches")
	}
}

// Property: col2im of overlapping patches counts each pixel once per
// covering window (gradient accumulation semantics).
func TestCol2ImOverlapAccumulates(t *testing.T) {
	x := New(1, 1, 3, 3)
	x.Fill(1)
	cols, _, _, err := Im2Col(x, 2, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Col2Im(cols, 1, 1, 3, 3, 2, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Center pixel is covered by all 4 windows, corners by 1, edges by 2.
	want := MustFromSlice([]float64{
		1, 2, 1,
		2, 4, 2,
		1, 2, 1,
	}, 1, 1, 3, 3)
	if !Equal(back, want) {
		t.Fatalf("col2im = %v, want %v", back, want)
	}
}

func TestCol2ImShapeError(t *testing.T) {
	if _, err := Col2Im(New(3, 3), 1, 1, 3, 3, 2, 2, 1, 0); err == nil {
		t.Fatal("want shape error")
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	x := randMat(r, 64, 64)
	y := randMat(r, 64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIm2Col28x28(b *testing.B) {
	x := New(8, 1, 28, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Im2Col(x, 3, 3, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}
