package tensor

import (
	"math/rand"
	"testing"
)

// Paper-CNN operand shapes (CIFAR input, batch 8): the three matmul
// flavours the conv/dense hot path actually issues.
//
//	forward   cols[b·oh·ow, inC·3·3] · Wᵀ[outC, inC·3·3]
//	backward  flatᵀ[b·oh·ow, outC] · cols  (weight gradient)
//	backward  flat[b·oh·ow, outC] · W      (input gradient)
func benchOperands(b *testing.B, m, k, n int) (*Tensor, *Tensor, *Tensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, m, k)
	bb := randMat(rng, k, n)
	dst := New(m, n)
	return a, bb, dst
}

func BenchmarkMatMul(b *testing.B) {
	// conv2 of the paper CNN at batch 8: dcols = flat·W.
	a, bb, dst := benchOperands(b, 8*30*30, 32, 288)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulInto(dst, a, bb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	// conv2 forward at batch 8: flat = cols·Wᵀ.
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 8*30*30, 288)
	w := randMat(rng, 32, 288)
	dst := New(8*30*30, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulTransBInto(dst, a, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulTransAAcc(b *testing.B) {
	// conv2 weight gradient at batch 8: dW += flatᵀ·cols.
	rng := rand.New(rand.NewSource(1))
	flat := randMat(rng, 8*30*30, 32)
	cols := randMat(rng, 8*30*30, 288)
	dst := New(32, 288)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulTransAAcc(dst, flat, cols); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIm2Col(b *testing.B) {
	// conv1 of the paper CNN at batch 8: 3×32×32 same-pad lowering.
	rng := rand.New(rand.NewSource(1))
	x := New(8, 3, 32, 32)
	for i := range x.data {
		x.data[i] = rng.NormFloat64()
	}
	_, _, rows, cols := Im2ColShape(8, 3, 32, 32, 3, 3, 1, 1)
	dst := New(rows, cols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Im2ColInto(dst, x, 3, 3, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCol2Im(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	_, _, rows, colw := Im2ColShape(8, 3, 32, 32, 3, 3, 1, 1)
	cols := randMat(rng, rows, colw)
	dst := New(8, 3, 32, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Col2ImInto(dst, cols, 3, 3, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}
