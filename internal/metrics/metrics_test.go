package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 || Percentile(sorted, 100) != 40 {
		t.Fatal("extremes wrong")
	}
	if got := Percentile(sorted, 50); math.Abs(got-25) > 1e-12 {
		t.Fatalf("p50 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
}

// Property: mean lies in [min, max]; percentiles are monotone.
func TestStatsProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Median <= s.P90+1e-9 && s.P90 <= s.P99+1e-9 && s.P99 <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsString(t *testing.T) {
	if !strings.Contains(Summarize([]float64{1, 2}).String(), "mean=") {
		t.Fatal("string missing mean")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1, 2.5, 9.999, 10, -1, 11} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	// 0,1 → bin 0; 2.5 → bin 1; 9.999, 10 → bin 4.
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	out := h.Render(20)
	if !strings.Contains(out, "█") || !strings.Contains(out, "under: 1") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("want error for empty range")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("want error for zero bins")
	}
}

func TestHistogramRenderDefaultWidth(t *testing.T) {
	h, err := NewHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.5)
	if h.Render(0) == "" {
		t.Fatal("empty render")
	}
}
