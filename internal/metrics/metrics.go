// Package metrics provides the summary statistics and histograms used to
// report the recovery-time distributions (Figs. 10–12) and the training
// curves (Figs. 6–9).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarizes a sample of float64 values.
type Stats struct {
	N                int
	Mean, Std        float64
	Min, Max, Median float64
	P90, P99         float64
}

// Summarize computes Stats over xs. An empty sample returns zero Stats.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if len(sorted) > 1 {
		s.Std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	s.Median = Percentile(sorted, 50)
	s.P90 = Percentile(sorted, 90)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0–100) of an ascending-sorted
// sample using linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P90, s.P99, s.Max)
}

// Histogram bins values into equal-width buckets over [min, max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // values below Lo
	Over   int // values above Hi
}

// NewHistogram creates a histogram with the given range and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 || hi <= lo {
		return nil, fmt.Errorf("metrics: bad histogram [%v,%v] x%d", lo, hi, bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add bins one value.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x > h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) {
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of added values (including out-of-range).
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Render draws an ASCII histogram with the given maximum bar width.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("█", c*width/maxC)
		fmt.Fprintf(&b, "%8.1f–%-8.1f %6d %s\n", h.Lo+float64(i)*binW, h.Lo+float64(i+1)*binW, c, bar)
	}
	if h.Under > 0 || h.Over > 0 {
		fmt.Fprintf(&b, "  (under: %d, over: %d)\n", h.Under, h.Over)
	}
	return b.String()
}
