package dataset

import (
	"fmt"
	"math/rand"
)

// Distribution selects the per-peer training-data distribution, matching
// Sec. VI-A1 of the paper.
type Distribution int

const (
	// IID: each peer's data is identically and independently distributed.
	IID Distribution = iota
	// NonIID5: 95% of a peer's data comes from its two main classes, 5%
	// from the remaining classes.
	NonIID5
	// NonIID0: a peer's data contains only its two main classes.
	NonIID0
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case IID:
		return "IID"
	case NonIID5:
		return "Non-IID (5%)"
	case NonIID0:
		return "Non-IID (0%)"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution parses "iid", "noniid5" or "noniid0".
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "iid", "IID":
		return IID, nil
	case "noniid5", "non-iid-5":
		return NonIID5, nil
	case "noniid0", "non-iid-0":
		return NonIID0, nil
	}
	return 0, fmt.Errorf("dataset: unknown distribution %q", s)
}

// mainFraction returns the fraction of a peer's samples drawn from its two
// main classes.
func (d Distribution) mainFraction() float64 {
	switch d {
	case NonIID5:
		return 0.95
	case NonIID0:
		return 1.0
	default:
		return -1 // IID: not class-constrained
	}
}

// Partition splits train among numPeers peers according to dist. Under IID
// the shuffled samples are dealt round-robin. Under the non-IID settings
// each peer is assigned two main classes uniformly at random (as in the
// paper: "two main classes randomly selected out of the ten") and its
// share of samples is filled to the main fraction from those classes and
// the remainder from the others.
//
// Every returned partition has ⌊len/numPeers⌋ or ⌈len/numPeers⌉ samples.
func Partition(train *Dataset, numPeers int, dist Distribution, rng *rand.Rand) ([]*Dataset, error) {
	if numPeers < 1 {
		return nil, fmt.Errorf("dataset: numPeers = %d", numPeers)
	}
	if train.Len() < numPeers {
		return nil, fmt.Errorf("dataset: %d samples cannot cover %d peers", train.Len(), numPeers)
	}
	if dist == IID {
		return partitionIID(train, numPeers, rng), nil
	}
	return partitionNonIID(train, numPeers, dist.mainFraction(), rng)
}

func partitionIID(train *Dataset, numPeers int, rng *rand.Rand) []*Dataset {
	perm := rng.Perm(train.Len())
	parts := make([]*Dataset, numPeers)
	for p := 0; p < numPeers; p++ {
		var idx []int
		for i := p; i < len(perm); i += numPeers {
			idx = append(idx, perm[i])
		}
		parts[p] = train.Subset(idx)
	}
	return parts
}

func partitionNonIID(train *Dataset, numPeers int, mainFrac float64, rng *rand.Rand) ([]*Dataset, error) {
	classes := train.Classes
	if classes < 3 {
		return nil, fmt.Errorf("dataset: non-IID partitioning needs ≥ 3 classes, got %d", classes)
	}
	// Pools of sample indices per class, shuffled.
	pools := make([][]int, classes)
	for i, s := range train.Samples {
		pools[s.Label] = append(pools[s.Label], i)
	}
	for _, pool := range pools {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	}
	next := make([]int, classes) // consumption cursor per class

	// take removes up to n indices from class c's pool, cycling (with
	// replacement across peers) if the pool is exhausted: the synthetic
	// generator can always mint more samples of a class, so reusing an
	// index only means two peers hold an identical sample, which is
	// harmless for these experiments.
	take := func(c, n int) []int {
		out := make([]int, 0, n)
		for len(out) < n {
			if next[c] >= len(pools[c]) {
				next[c] = 0
			}
			if len(pools[c]) == 0 {
				break
			}
			out = append(out, pools[c][next[c]])
			next[c]++
		}
		return out
	}

	per := train.Len() / numPeers
	parts := make([]*Dataset, numPeers)
	for p := 0; p < numPeers; p++ {
		// Two distinct main classes, uniformly at random.
		a := rng.Intn(classes)
		b := rng.Intn(classes - 1)
		if b >= a {
			b++
		}
		nMain := int(float64(per) * mainFrac)
		nRest := per - nMain
		var idx []int
		idx = append(idx, take(a, nMain/2)...)
		idx = append(idx, take(b, nMain-nMain/2)...)
		for i := 0; i < nRest; i++ {
			c := rng.Intn(classes - 2)
			// Map onto classes other than a and b.
			for _, m := range []int{min(a, b), max(a, b)} {
				if c >= m {
					c++
				}
			}
			idx = append(idx, take(c, 1)...)
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		parts[p] = train.Subset(idx)
	}
	return parts, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
