package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// PartitionDirichlet splits train among numPeers using the Dirichlet
// label-skew model standard in the federated-learning literature (and a
// generalization of the paper's two-main-classes scheme): for each class
// the per-peer proportions are drawn from Dir(alpha, …, alpha). Small
// alpha (≈0.1) concentrates each class on few peers (heavy skew); large
// alpha approaches IID.
func PartitionDirichlet(train *Dataset, numPeers int, alpha float64, rng *rand.Rand) ([]*Dataset, error) {
	if numPeers < 1 {
		return nil, fmt.Errorf("dataset: numPeers = %d", numPeers)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("dataset: dirichlet alpha %v must be positive", alpha)
	}
	if train.Len() < numPeers {
		return nil, fmt.Errorf("dataset: %d samples cannot cover %d peers", train.Len(), numPeers)
	}
	// Pools per class, shuffled.
	pools := make([][]int, train.Classes)
	for i, s := range train.Samples {
		pools[s.Label] = append(pools[s.Label], i)
	}
	idxByPeer := make([][]int, numPeers)
	for _, pool := range pools {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		props := dirichlet(numPeers, alpha, rng)
		// Convert proportions to contiguous slice boundaries.
		start := 0
		for p := 0; p < numPeers; p++ {
			count := int(props[p]*float64(len(pool)) + 0.5)
			if p == numPeers-1 {
				count = len(pool) - start
			}
			if start+count > len(pool) {
				count = len(pool) - start
			}
			idxByPeer[p] = append(idxByPeer[p], pool[start:start+count]...)
			start += count
		}
	}
	// Guarantee non-empty shards: move one sample from the largest shard
	// into any empty one.
	for p := range idxByPeer {
		for len(idxByPeer[p]) == 0 {
			largest := 0
			for q := range idxByPeer {
				if len(idxByPeer[q]) > len(idxByPeer[largest]) {
					largest = q
				}
			}
			if len(idxByPeer[largest]) < 2 {
				return nil, fmt.Errorf("dataset: not enough samples to fill %d peers", numPeers)
			}
			n := len(idxByPeer[largest])
			idxByPeer[p] = append(idxByPeer[p], idxByPeer[largest][n-1])
			idxByPeer[largest] = idxByPeer[largest][:n-1]
		}
	}
	parts := make([]*Dataset, numPeers)
	for p, idx := range idxByPeer {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		parts[p] = train.Subset(idx)
	}
	return parts, nil
}

// dirichlet samples Dir(alpha, …, alpha) over n coordinates via gamma
// draws normalized to 1.
func dirichlet(n int, alpha float64, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(alpha, rng)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate draw; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws from Gamma(shape, 1) using Marsaglia & Tsang's
// method, with the standard boost for shape < 1.
func gammaSample(shape float64, rng *rand.Rand) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(shape+1, rng) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / (3.0 * math.Sqrt(d))
	for {
		x := rng.NormFloat64()
		v := 1.0 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u == 0 {
			continue
		}
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			return d * v
		}
	}
}
