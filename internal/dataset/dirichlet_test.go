package dataset

import (
	"math"
	"math/rand"
	"testing"
)

func TestDirichletPartitionBasics(t *testing.T) {
	train, _, err := Generate(Tiny(5, 1000, 10, 41))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	parts, err := PartitionDirichlet(train, 8, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 8 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for i, p := range parts {
		if p.Len() == 0 {
			t.Fatalf("peer %d has no samples", i)
		}
		total += p.Len()
	}
	if total != train.Len() {
		t.Fatalf("partition total %d != %d", total, train.Len())
	}
}

func TestDirichletSkewByAlpha(t *testing.T) {
	// Smaller alpha → more label concentration per peer. Measure the
	// mean (over peers) of the max class share.
	train, _, err := Generate(Tiny(5, 2000, 10, 43))
	if err != nil {
		t.Fatal(err)
	}
	maxShare := func(alpha float64, seed int64) float64 {
		parts, err := PartitionDirichlet(train, 10, alpha, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range parts {
			best := 0
			for _, n := range p.ClassCounts() {
				if n > best {
					best = n
				}
			}
			sum += float64(best) / float64(p.Len())
		}
		return sum / float64(len(parts))
	}
	skewed := maxShare(0.1, 2)
	mild := maxShare(100, 3)
	if skewed <= mild {
		t.Fatalf("alpha=0.1 share %.3f not above alpha=100 share %.3f", skewed, mild)
	}
	// alpha→∞ approaches IID: max share near 1/classes = 0.2.
	if math.Abs(mild-0.2) > 0.1 {
		t.Fatalf("alpha=100 share %.3f should be near 0.2", mild)
	}
	if skewed < 0.4 {
		t.Fatalf("alpha=0.1 share %.3f should be heavily skewed", skewed)
	}
}

func TestDirichletErrors(t *testing.T) {
	train, _, err := Generate(Tiny(3, 50, 5, 47))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if _, err := PartitionDirichlet(train, 0, 1, rng); err == nil {
		t.Fatal("want error for 0 peers")
	}
	if _, err := PartitionDirichlet(train, 3, 0, rng); err == nil {
		t.Fatal("want error for alpha = 0")
	}
	if _, err := PartitionDirichlet(train, 100, 1, rng); err == nil {
		t.Fatal("want error for too many peers")
	}
}

func TestGammaSampleMoments(t *testing.T) {
	// Gamma(k, 1) has mean k and variance k.
	rng := rand.New(rand.NewSource(5))
	for _, k := range []float64{0.5, 1, 3} {
		const n = 20000
		sum, ss := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := gammaSample(k, rng)
			sum += x
			ss += x * x
		}
		mean := sum / n
		variance := ss/n - mean*mean
		if math.Abs(mean-k) > 0.1*k+0.05 {
			t.Fatalf("Gamma(%v) mean = %v", k, mean)
		}
		if math.Abs(variance-k) > 0.2*k+0.1 {
			t.Fatalf("Gamma(%v) variance = %v", k, variance)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, alpha := range []float64{0.1, 1, 10} {
		props := dirichlet(7, alpha, rng)
		sum := 0.0
		for _, p := range props {
			if p < 0 {
				t.Fatalf("negative proportion %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("alpha=%v: proportions sum to %v", alpha, sum)
		}
	}
}
