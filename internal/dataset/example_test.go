package dataset_test

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// The paper's three training-data distributions, applied to a synthetic
// dataset: under Non-IID (0%) every peer holds exactly two classes.
func ExamplePartition() {
	train, _, err := dataset.Generate(dataset.Tiny(10, 1000, 100, 1))
	if err != nil {
		panic(err)
	}
	parts, err := dataset.Partition(train, 4, dataset.NonIID0, rand.New(rand.NewSource(2)))
	if err != nil {
		panic(err)
	}
	for i, p := range parts {
		classes := 0
		for _, n := range p.ClassCounts() {
			if n > 0 {
				classes++
			}
		}
		fmt.Printf("peer %d: %d classes\n", i, classes)
	}
	// Output:
	// peer 0: 2 classes
	// peer 1: 2 classes
	// peer 2: 2 classes
	// peer 3: 2 classes
}
