// Package dataset provides the image-classification workloads for the
// federated-learning experiments.
//
// The paper evaluates on MNIST and CIFAR-10. This module must run offline,
// so those are substituted with synthetic class-conditional Gaussian image
// datasets at the same shapes (28×28×1 and 32×32×3): each of the 10 classes
// has a fixed smooth prototype pattern and samples are the prototype plus
// i.i.d. Gaussian pixel noise. The substitution preserves what the
// experiments measure — a learnable multi-class task whose per-peer label
// distribution can be skewed exactly as in the paper:
//
//   - IID: each peer's training set is an i.i.d. sample of all classes.
//   - Non-IID (5%): 95% of each peer's data comes from two "main" classes
//     chosen for that peer; 5% from the remaining classes.
//   - Non-IID (0%): each peer only holds its two main classes.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Sample is one labelled image, stored as a flat [channels·size·size]
// pixel vector.
type Sample struct {
	X     []float64
	Label int
}

// Dataset is a labelled image collection with fixed geometry.
type Dataset struct {
	Channels int
	Size     int // images are Size×Size
	Classes  int
	Samples  []Sample
}

// Spec describes a synthetic dataset to generate.
type Spec struct {
	Channels  int
	Size      int
	Classes   int
	Train     int     // number of training samples
	Test      int     // number of test samples
	Noise     float64 // pixel noise std-dev; higher is harder
	Seed      int64
	Sharpness float64 // prototype contrast; default 1
}

// MNISTLike returns the spec of the MNIST substitute: 28×28 grayscale,
// 10 classes. Sample counts are configurable; the paper uses 60k/10k.
func MNISTLike(train, test int, seed int64) Spec {
	return Spec{Channels: 1, Size: 28, Classes: 10, Train: train, Test: test, Noise: 0.35, Seed: seed}
}

// CIFAR10Like returns the spec of the CIFAR-10 substitute: 32×32 RGB,
// 10 classes, with more noise (CIFAR-10 is the harder dataset).
func CIFAR10Like(train, test int, seed int64) Spec {
	return Spec{Channels: 3, Size: 32, Classes: 10, Train: train, Test: test, Noise: 0.55, Seed: seed}
}

// Tiny returns a small spec for fast tests and CI-scale experiment runs:
// 8×8 grayscale, `classes` classes.
func Tiny(classes, train, test int, seed int64) Spec {
	return Spec{Channels: 1, Size: 8, Classes: classes, Train: train, Test: test, Noise: 0.45, Seed: seed}
}

// Generate builds train and test datasets from the spec. Prototypes are
// derived deterministically from the seed, so two calls with the same spec
// produce samples from an identical underlying distribution.
func Generate(s Spec) (train, test *Dataset, err error) {
	if s.Classes < 2 {
		return nil, nil, fmt.Errorf("dataset: need ≥ 2 classes, got %d", s.Classes)
	}
	if s.Channels < 1 || s.Size < 1 {
		return nil, nil, fmt.Errorf("dataset: bad geometry %dx%dx%d", s.Channels, s.Size, s.Size)
	}
	if s.Sharpness == 0 {
		s.Sharpness = 1
	}
	rng := rand.New(rand.NewSource(s.Seed))
	protos := prototypes(s, rng)
	mk := func(n int) *Dataset {
		d := &Dataset{Channels: s.Channels, Size: s.Size, Classes: s.Classes}
		d.Samples = make([]Sample, n)
		for i := range d.Samples {
			label := rng.Intn(s.Classes)
			x := make([]float64, len(protos[label]))
			for j, p := range protos[label] {
				x[j] = p + s.Noise*rng.NormFloat64()
			}
			d.Samples[i] = Sample{X: x, Label: label}
		}
		return d
	}
	return mk(s.Train), mk(s.Test), nil
}

// prototypes builds one smooth pattern per class: a sum of a few random
// 2-D sinusoids, giving spatial structure that convolutions can exploit.
func prototypes(s Spec, rng *rand.Rand) [][]float64 {
	dim := s.Channels * s.Size * s.Size
	out := make([][]float64, s.Classes)
	for c := range out {
		p := make([]float64, dim)
		const waves = 3
		type wave struct{ fx, fy, ph, amp float64 }
		ws := make([]wave, waves)
		for i := range ws {
			ws[i] = wave{
				fx:  (rng.Float64()*2 + 0.5) * math.Pi / float64(s.Size),
				fy:  (rng.Float64()*2 + 0.5) * math.Pi / float64(s.Size),
				ph:  rng.Float64() * 2 * math.Pi,
				amp: (0.5 + rng.Float64()) * s.Sharpness / waves,
			}
		}
		for ch := 0; ch < s.Channels; ch++ {
			chShift := float64(ch) * 1.7
			for y := 0; y < s.Size; y++ {
				for x := 0; x < s.Size; x++ {
					v := 0.0
					for _, w := range ws {
						v += w.amp * math.Sin(w.fx*float64(x)+w.fy*float64(y)+w.ph+chShift)
					}
					p[(ch*s.Size+y)*s.Size+x] = v
				}
			}
		}
		out[c] = p
	}
	return out
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// PixelDim returns the flat pixel-vector length of each sample.
func (d *Dataset) PixelDim() int { return d.Channels * d.Size * d.Size }

// Subset returns a dataset view holding the samples at the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{Channels: d.Channels, Size: d.Size, Classes: d.Classes}
	s.Samples = make([]Sample, len(idx))
	for i, j := range idx {
		s.Samples[i] = d.Samples[j]
	}
	return s
}

// Shuffle permutes samples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

// Batch materializes samples [lo, hi) as an image tensor
// [hi−lo, channels, size, size] plus labels.
func (d *Dataset) Batch(lo, hi int) (*tensor.Tensor, []int, error) {
	if lo < 0 || hi > len(d.Samples) || lo >= hi {
		return nil, nil, fmt.Errorf("dataset: bad batch range [%d,%d) of %d", lo, hi, len(d.Samples))
	}
	n := hi - lo
	x := tensor.New(n, d.Channels, d.Size, d.Size)
	labels := make([]int, n)
	dim := d.PixelDim()
	for i := 0; i < n; i++ {
		copy(x.Data()[i*dim:(i+1)*dim], d.Samples[lo+i].X)
		labels[i] = d.Samples[lo+i].Label
	}
	return x, labels, nil
}

// FlatBatch materializes samples [lo, hi) as a [hi−lo, pixels] matrix for
// MLP-style models.
func (d *Dataset) FlatBatch(lo, hi int) (*tensor.Tensor, []int, error) {
	x, labels, err := d.Batch(lo, hi)
	if err != nil {
		return nil, nil, err
	}
	flat, err := x.Reshape(hi-lo, d.PixelDim())
	if err != nil {
		return nil, nil, err
	}
	return flat, labels, nil
}

// ClassCounts returns the number of samples per label.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, s := range d.Samples {
		counts[s.Label]++
	}
	return counts
}
