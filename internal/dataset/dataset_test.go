package dataset

import (
	"math"
	"math/rand"
	"testing"
)

func TestGenerateShapesAndDeterminism(t *testing.T) {
	spec := Tiny(4, 100, 40, 7)
	train, test, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 100 || test.Len() != 40 {
		t.Fatalf("sizes = %d/%d", train.Len(), test.Len())
	}
	if train.PixelDim() != 64 {
		t.Fatalf("pixel dim = %d", train.PixelDim())
	}
	for _, s := range train.Samples {
		if len(s.X) != 64 {
			t.Fatalf("sample dim = %d", len(s.X))
		}
		if s.Label < 0 || s.Label >= 4 {
			t.Fatalf("label = %d", s.Label)
		}
	}
	// Same seed ⇒ identical data.
	train2, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range train.Samples {
		if train.Samples[i].Label != train2.Samples[i].Label {
			t.Fatal("generation must be deterministic per seed")
		}
		for j := range train.Samples[i].X {
			if train.Samples[i].X[j] != train2.Samples[i].X[j] {
				t.Fatal("generation must be deterministic per seed")
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, _, err := Generate(Spec{Classes: 1, Channels: 1, Size: 4}); err == nil {
		t.Fatal("want error for 1 class")
	}
	if _, _, err := Generate(Spec{Classes: 2, Channels: 0, Size: 4}); err == nil {
		t.Fatal("want error for 0 channels")
	}
}

func TestMNISTAndCIFARSpecs(t *testing.T) {
	m := MNISTLike(10, 5, 1)
	if m.Channels != 1 || m.Size != 28 || m.Classes != 10 {
		t.Fatalf("mnist spec = %+v", m)
	}
	c := CIFAR10Like(10, 5, 1)
	if c.Channels != 3 || c.Size != 32 || c.Classes != 10 {
		t.Fatalf("cifar spec = %+v", c)
	}
	train, _, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if train.PixelDim() != 3*32*32 {
		t.Fatalf("cifar pixel dim = %d", train.PixelDim())
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Nearest-prototype classification on clean means must beat chance by
	// a wide margin — otherwise the learning experiments are meaningless.
	train, test, err := Generate(Tiny(4, 400, 100, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Estimate class means from train.
	dim := train.PixelDim()
	means := make([][]float64, train.Classes)
	counts := make([]int, train.Classes)
	for i := range means {
		means[i] = make([]float64, dim)
	}
	for _, s := range train.Samples {
		for j, v := range s.X {
			means[s.Label][j] += v
		}
		counts[s.Label]++
	}
	for c := range means {
		if counts[c] == 0 {
			continue
		}
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for _, s := range test.Samples {
		best, bi := math.Inf(1), -1
		for c := range means {
			d := 0.0
			for j, v := range s.X {
				d += (v - means[c][j]) * (v - means[c][j])
			}
			if d < best {
				best, bi = d, c
			}
		}
		if bi == s.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.9 {
		t.Fatalf("nearest-mean accuracy %.2f; classes not separable enough", acc)
	}
}

func TestBatch(t *testing.T) {
	train, _, err := Generate(Tiny(3, 20, 5, 11))
	if err != nil {
		t.Fatal(err)
	}
	x, labels, err := train.Batch(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Shape(); got[0] != 4 || got[1] != 1 || got[2] != 8 || got[3] != 8 {
		t.Fatalf("batch shape = %v", got)
	}
	if len(labels) != 4 || labels[0] != train.Samples[2].Label {
		t.Fatalf("labels = %v", labels)
	}
	if x.Data()[0] != train.Samples[2].X[0] {
		t.Fatal("batch pixels must match sample")
	}
	flat, _, err := train.FlatBatch(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Rank() != 2 || flat.Dim(1) != 64 {
		t.Fatalf("flat shape = %v", flat.Shape())
	}
	if _, _, err := train.Batch(5, 5); err == nil {
		t.Fatal("want empty-range error")
	}
	if _, _, err := train.Batch(-1, 3); err == nil {
		t.Fatal("want negative-range error")
	}
}

func TestSubsetAndShuffle(t *testing.T) {
	train, _, err := Generate(Tiny(3, 30, 5, 13))
	if err != nil {
		t.Fatal(err)
	}
	sub := train.Subset([]int{1, 3, 5})
	if sub.Len() != 3 || sub.Samples[1].Label != train.Samples[3].Label {
		t.Fatal("subset broken")
	}
	before := make([]int, train.Len())
	for i, s := range train.Samples {
		before[i] = s.Label
	}
	train.Shuffle(rand.New(rand.NewSource(1)))
	after := make([]int, train.Len())
	counts := map[int]int{}
	for i, s := range train.Samples {
		after[i] = s.Label
		counts[s.Label]++
	}
	wantCounts := map[int]int{}
	for _, l := range before {
		wantCounts[l]++
	}
	for k, v := range wantCounts {
		if counts[k] != v {
			t.Fatal("shuffle must preserve multiset of labels")
		}
	}
}

func TestPartitionIID(t *testing.T) {
	train, _, err := Generate(Tiny(5, 500, 10, 17))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	parts, err := Partition(train, 10, IID, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 10 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
		if p.Len() != 50 {
			t.Fatalf("IID partition size = %d, want 50", p.Len())
		}
		// Every class should appear with roughly uniform frequency.
		for c, n := range p.ClassCounts() {
			if n == 0 {
				t.Fatalf("IID partition missing class %d", c)
			}
		}
	}
	if total != 500 {
		t.Fatalf("total = %d", total)
	}
}

func TestPartitionNonIID0(t *testing.T) {
	train, _, err := Generate(Tiny(6, 600, 10, 19))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	parts, err := Partition(train, 6, NonIID0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		nonzero := 0
		for _, n := range p.ClassCounts() {
			if n > 0 {
				nonzero++
			}
		}
		if nonzero != 2 {
			t.Fatalf("peer %d holds %d classes under Non-IID(0%%), want exactly 2", i, nonzero)
		}
	}
}

func TestPartitionNonIID5(t *testing.T) {
	train, _, err := Generate(Tiny(6, 1200, 10, 23))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	parts, err := Partition(train, 4, NonIID5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		counts := p.ClassCounts()
		// Main two classes should hold ~95% of samples.
		c := append([]int(nil), counts...)
		// top-2 sum
		top1, top2 := 0, 0
		for _, n := range c {
			if n > top1 {
				top1, top2 = n, top1
			} else if n > top2 {
				top2 = n
			}
		}
		frac := float64(top1+top2) / float64(p.Len())
		if frac < 0.9 || frac > 0.99 {
			t.Fatalf("peer %d main fraction = %.3f, want ≈ 0.95", i, frac)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	train, _, err := Generate(Tiny(3, 10, 2, 29))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	if _, err := Partition(train, 0, IID, rng); err == nil {
		t.Fatal("want error for 0 peers")
	}
	if _, err := Partition(train, 100, IID, rng); err == nil {
		t.Fatal("want error for more peers than samples")
	}
	two := &Dataset{Channels: 1, Size: 2, Classes: 2, Samples: train.Samples}
	if _, err := Partition(two, 2, NonIID0, rng); err == nil {
		t.Fatal("want error for non-IID with 2 classes")
	}
}

func TestDistributionStringAndParse(t *testing.T) {
	for _, d := range []Distribution{IID, NonIID5, NonIID0} {
		if d.String() == "" {
			t.Fatal("empty string")
		}
	}
	if Distribution(42).String() == "" {
		t.Fatal("unknown distribution must still render")
	}
	for s, want := range map[string]Distribution{"iid": IID, "noniid5": NonIID5, "noniid0": NonIID0} {
		got, err := ParseDistribution(s)
		if err != nil || got != want {
			t.Fatalf("parse %q = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDistribution("bogus"); err == nil {
		t.Fatal("want parse error")
	}
}
