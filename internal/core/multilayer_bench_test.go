package core

import (
	"math/rand"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/transport"
)

// The Serial/Workers4 pair pins the parallel scheduler's overhead: with
// pooled worker contexts the fan-out must not allocate more than the
// serial path (gated at 1.0 by make bench-check). On 1-CPU CI the tensor
// pool degrades Workers4 to the identical inline path, so the pair also
// certifies the degradation is free.
func benchMultiLayerAggregate(b *testing.B, workers int) {
	topo, err := BuildMultiLayerTopology(4, 6) // N = 1456
	if err != nil {
		b.Fatal(err)
	}
	models := randModels(rand.New(rand.NewSource(7)), topo.N, 64)
	ms := &MultiLayerScratch{}
	counter := transport.NewCounter()
	opts := MultiLayerOptions{Workers: workers, Scratch: ms}
	// Warm the pools so the steady state is what gets measured.
	if _, err := AggregateMultiLayerOpts(topo, models, nil, rand.New(rand.NewSource(11)), counter, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AggregateMultiLayerOpts(topo, models, nil, rand.New(rand.NewSource(11)), counter, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiLayerAggregateSerial(b *testing.B)   { benchMultiLayerAggregate(b, 1) }
func BenchmarkMultiLayerAggregateWorkers4(b *testing.B) { benchMultiLayerAggregate(b, 4) }

// The bytes pair pins measured traffic to the Eq. 10 closed form: both
// benchmarks report B/op and bench-check gates their ratio at 1.0 in
// both directions, so any drift in the engine's accounting fails CI.
const (
	mlBytesDegree = 4
	mlBytesLayers = 4 // N = 160
	mlBytesDim    = 32
)

func BenchmarkMultiLayerBytesMeasured(b *testing.B) {
	topo, err := BuildMultiLayerTopology(mlBytesDegree, mlBytesLayers)
	if err != nil {
		b.Fatal(err)
	}
	models := randModels(rand.New(rand.NewSource(13)), topo.N, mlBytesDim)
	ms := &MultiLayerScratch{}
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := AggregateMultiLayerOpts(topo, models, nil, rand.New(rand.NewSource(17)), nil,
			MultiLayerOptions{Workers: 4, Scratch: ms})
		if err != nil {
			b.Fatal(err)
		}
		bytes = res.Bytes
	}
	b.ReportMetric(float64(bytes), "B/op")
}

func BenchmarkMultiLayerBytesClosedForm(b *testing.B) {
	var want int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		units, err := costmodel.MultiLayerUnits(mlBytesDegree, mlBytesLayers)
		if err != nil {
			b.Fatal(err)
		}
		want = units * 8 * mlBytesDim
	}
	b.ReportMetric(float64(want), "B/op")
}
