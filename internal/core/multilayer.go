package core

import (
	"fmt"
	"math/rand"

	"repro/internal/sac"
	"repro/internal/secretshare"
	"repro/internal/transport"
)

// This file implements the X-layer generalization the paper analyzes in
// Sec. VII-C (but does not build): a tree of SAC subgroups of size n.
// Layer 1 is a single group of n peers; every layer-x member leads one
// layer-(x+1) subgroup of itself plus n−1 new peers, except that
// layer-(x+1) leaders who already lead at layer x do not lead again
// deeper (the paper's "cannot become a leader in the x+2-th layer"
// restriction, with the topmost leader also leading at layer 2).
//
// Aggregation runs bottom-up: each subgroup SAC-sums its members'
// subtree sums; the top group divides by N; the result is distributed
// back down the tree ((N−1)·|w|). Total cost matches Eq. 10:
// (N−1)(n+2)·|w|.

// MultiLayerTopology is the peer tree of an X-layer aggregation system.
type MultiLayerTopology struct {
	N      int // total peers (Eq. 6)
	Degree int // subgroup size n
	Layers int // depth X

	// Subgroups per layer, deepest last. Each subgroup lists global peer
	// indices with the leader first. Layer 1 is subgroupsByLayer[0][0].
	subgroupsByLayer [][][]int
}

// BuildMultiLayerTopology constructs the tree for subgroup size n and
// depth layers.
func BuildMultiLayerTopology(n, layers int) (*MultiLayerTopology, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: multilayer needs n ≥ 2, got %d", n)
	}
	if layers < 1 {
		return nil, fmt.Errorf("core: multilayer needs ≥ 1 layer, got %d", layers)
	}
	t := &MultiLayerTopology{Degree: n, Layers: layers}
	next := 0
	newPeer := func() int { next++; return next - 1 }

	// Layer 1: one group of n fresh peers; all of them lead at layer 2.
	var top []int
	for i := 0; i < n; i++ {
		top = append(top, newPeer())
	}
	t.subgroupsByLayer = append(t.subgroupsByLayer, [][]int{top})
	frontier := append([]int(nil), top...) // peers who lead the next layer

	for x := 2; x <= layers; x++ {
		var groups [][]int
		var nextFrontier []int
		for _, leader := range frontier {
			g := []int{leader}
			for i := 0; i < n-1; i++ {
				p := newPeer()
				g = append(g, p)
				// Only the new (follower) peers lead one layer deeper.
				nextFrontier = append(nextFrontier, p)
			}
			groups = append(groups, g)
		}
		t.subgroupsByLayer = append(t.subgroupsByLayer, groups)
		frontier = nextFrontier
	}
	t.N = next
	return t, nil
}

// Subgroups returns the subgroups of layer x (1-based), leader first in
// each subgroup.
func (t *MultiLayerTopology) Subgroups(x int) ([][]int, error) {
	if x < 1 || x > t.Layers {
		return nil, fmt.Errorf("core: layer %d out of [1,%d]", x, t.Layers)
	}
	out := make([][]int, len(t.subgroupsByLayer[x-1]))
	for i, g := range t.subgroupsByLayer[x-1] {
		out[i] = append([]int(nil), g...)
	}
	return out, nil
}

// MultiLayerResult reports one X-layer aggregation.
type MultiLayerResult struct {
	Global []float64
	// Bytes is this aggregation's traffic.
	Bytes int64
	// Aggregations is the number of subgroup SACs executed.
	Aggregations int
}

// AggregateMultiLayer runs one X-layer aggregation of models (indexed by
// the topology's global peer order) using n-out-of-n SAC in every
// subgroup. div selects the share scheme (nil: Alg. 1); counter may be
// shared (nil allocates one).
func AggregateMultiLayer(t *MultiLayerTopology, models [][]float64, div secretshare.Divider, rng *rand.Rand, counter *transport.Counter) (*MultiLayerResult, error) {
	if len(models) != t.N {
		return nil, fmt.Errorf("core: %d models for %d peers", len(models), t.N)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if counter == nil {
		counter = transport.NewCounter()
	}
	dim := len(models[0])
	for i, m := range models {
		if len(m) != dim {
			return nil, fmt.Errorf("core: model %d has %d weights, want %d", i, len(m), dim)
		}
	}
	before := counter.TotalBytes()

	// value[p] is peer p's current subtree sum (initially its own model).
	value := make([][]float64, t.N)
	for i, m := range models {
		value[i] = append([]float64(nil), m...)
	}

	aggs := 0
	sumOf := func(group []int) ([]float64, error) {
		sub := make([][]float64, len(group))
		for i, p := range group {
			sub[i] = value[p]
		}
		mesh := transport.NewMesh(len(group), counter)
		res, err := sac.Run(mesh, sac.Config{
			N: len(group), K: len(group), Leader: 0, Mode: sac.ModeLeader,
			Divider: div, Rng: rng,
		}, sub, nil)
		if err != nil {
			return nil, err
		}
		// SAC returns the average over the group; recover the sum so
		// weights of unequal subtrees stay exact.
		sum := make([]float64, dim)
		for j, v := range res.Avg {
			sum[j] = v * float64(len(res.Contributors))
		}
		aggs++
		return sum, nil
	}

	// Bottom-up: deepest layer first.
	for x := t.Layers; x >= 2; x-- {
		for _, group := range t.subgroupsByLayer[x-1] {
			sum, err := sumOf(group)
			if err != nil {
				return nil, fmt.Errorf("core: layer %d: %w", x, err)
			}
			value[group[0]] = sum
		}
	}
	top := t.subgroupsByLayer[0][0]
	sum, err := sumOf(top)
	if err != nil {
		return nil, fmt.Errorf("core: top layer: %w", err)
	}
	global := make([]float64, dim)
	for j, v := range sum {
		global[j] = v / float64(t.N)
	}

	// Distribute the global model down the tree: every peer except the
	// topmost leader receives it exactly once — (N−1)·|w|.
	for i := 0; i < t.N-1; i++ {
		counter.Record(KindBroadcast, int64(8*dim))
	}

	return &MultiLayerResult{
		Global:       global,
		Bytes:        counter.TotalBytes() - before,
		Aggregations: aggs,
	}, nil
}
