package core

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/sac"
	"repro/internal/secretshare"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// This file implements the X-layer generalization the paper analyzes in
// Sec. VII-C (but does not build): a tree of SAC subgroups of size n.
// Layer 1 is a single group of n peers; every layer-x member leads one
// layer-(x+1) subgroup of itself plus n−1 new peers, except that
// layer-(x+1) leaders who already lead at layer x do not lead again
// deeper (the paper's "cannot become a leader in the x+2-th layer"
// restriction, with the topmost leader also leading at layer 2).
//
// Aggregation runs bottom-up: each subgroup SAC-sums its members'
// subtree sums; the top group divides by N; the result is distributed
// back down the tree ((N−1)·|w|). Total cost matches Eq. 10:
// (N−1)(n+2)·|w|.

// MultiLayerTopology is the peer tree of an X-layer aggregation system.
type MultiLayerTopology struct {
	N      int // total peers (Eq. 6)
	Degree int // subgroup size n
	Layers int // depth X

	// Subgroups per layer, deepest last. Each subgroup lists global peer
	// indices with the leader first. Layer 1 is subgroupsByLayer[0][0].
	subgroupsByLayer [][][]int
}

// BuildMultiLayerTopology constructs the tree for subgroup size n and
// depth layers.
func BuildMultiLayerTopology(n, layers int) (*MultiLayerTopology, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: multilayer needs n ≥ 2, got %d", n)
	}
	if layers < 1 {
		return nil, fmt.Errorf("core: multilayer needs ≥ 1 layer, got %d", layers)
	}
	t := &MultiLayerTopology{Degree: n, Layers: layers}
	next := 0
	newPeer := func() int { next++; return next - 1 }

	// Layer 1: one group of n fresh peers; all of them lead at layer 2.
	var top []int
	for i := 0; i < n; i++ {
		top = append(top, newPeer())
	}
	t.subgroupsByLayer = append(t.subgroupsByLayer, [][]int{top})
	frontier := append([]int(nil), top...) // peers who lead the next layer

	for x := 2; x <= layers; x++ {
		var groups [][]int
		var nextFrontier []int
		for _, leader := range frontier {
			g := []int{leader}
			for i := 0; i < n-1; i++ {
				p := newPeer()
				g = append(g, p)
				// Only the new (follower) peers lead one layer deeper.
				nextFrontier = append(nextFrontier, p)
			}
			groups = append(groups, g)
		}
		t.subgroupsByLayer = append(t.subgroupsByLayer, groups)
		frontier = nextFrontier
	}
	t.N = next
	return t, nil
}

// Subgroups returns the subgroups of layer x (1-based), leader first in
// each subgroup.
func (t *MultiLayerTopology) Subgroups(x int) ([][]int, error) {
	if x < 1 || x > t.Layers {
		return nil, fmt.Errorf("core: layer %d out of [1,%d]", x, t.Layers)
	}
	out := make([][]int, len(t.subgroupsByLayer[x-1]))
	for i, g := range t.subgroupsByLayer[x-1] {
		out[i] = append([]int(nil), g...)
	}
	return out, nil
}

// MultiLayerResult reports one X-layer aggregation.
type MultiLayerResult struct {
	Global []float64
	// Bytes is this aggregation's traffic.
	Bytes int64
	// Aggregations is the number of subgroup SACs executed.
	Aggregations int
}

// MultiLayerOptions tunes AggregateMultiLayerOpts.
type MultiLayerOptions struct {
	// Workers caps how many goroutines (borrowed from the shared tensor
	// worker pool, so never more than the global budget) schedule
	// independent same-layer subgroup SACs concurrently. Values ≤ 1 run
	// fully serial. Results are bit-identical at any setting: every
	// subgroup draws from its own seed-derived RNG stream, so the split
	// of subgroups across workers cannot change what any SAC computes.
	Workers int
	// Scratch pools per-worker mesh/SAC/RNG state across aggregations.
	// Nil allocates a private pool per call (the steady-training caller
	// keeps one and reuses it every round).
	Scratch *MultiLayerScratch
}

// MultiLayerScratch is a free list of per-worker aggregation contexts —
// mesh, SAC scratch, RNG, subgroup model views — shared across the
// subgroup fan-out of one aggregation and reusable across aggregations.
// It is safe for concurrent use; each worker checks a context out, runs
// its span of subgroups, and returns it.
type MultiLayerScratch struct {
	mu    sync.Mutex
	free  []*mlWorker
	seeds []int64
}

// mlWorker is one worker's pooled context. The mesh and SAC scratch are
// rebuilt only when the subgroup size or the traffic counter change;
// between subgroups only the RNG is re-seeded.
type mlWorker struct {
	mesh    *transport.Mesh
	counter *transport.Counter
	n       int
	sc      *sac.Scratch
	src     *mlSource
	rng     *rand.Rand
	sub     [][]float64
}

func (ms *MultiLayerScratch) get(n int, counter *transport.Counter) *mlWorker {
	ms.mu.Lock()
	var w *mlWorker
	if len(ms.free) > 0 {
		w = ms.free[len(ms.free)-1]
		ms.free = ms.free[:len(ms.free)-1]
	}
	ms.mu.Unlock()
	if w == nil {
		src := &mlSource{}
		w = &mlWorker{src: src, rng: rand.New(src), sc: &sac.Scratch{}}
	}
	if w.mesh == nil || w.n != n || w.counter != counter {
		w.mesh = transport.NewMesh(n, counter)
		w.n, w.counter = n, counter
		w.sub = make([][]float64, 0, n)
	}
	return w
}

func (ms *MultiLayerScratch) put(w *mlWorker) {
	ms.mu.Lock()
	ms.free = append(ms.free, w)
	ms.mu.Unlock()
}

// seedBuf returns the pooled per-layer seed buffer, emptied.
func (ms *MultiLayerScratch) seedBuf(capHint int) []int64 {
	if cap(ms.seeds) < capHint {
		ms.seeds = make([]int64, 0, capHint)
	}
	return ms.seeds[:0]
}

// mlSource is a re-seedable splitmix64 rand.Source64. One lives in each
// pooled worker context: re-seeding it per subgroup gives every subgroup
// an independent derived RNG stream without the ~5KB rand.NewSource
// allocation per group (at 100k peers an aggregation runs ~39k SACs).
type mlSource struct{ state uint64 }

func (s *mlSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *mlSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *mlSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// AggregateMultiLayer runs one X-layer aggregation of models (indexed by
// the topology's global peer order) using n-out-of-n SAC in every
// subgroup. div selects the share scheme (nil: Alg. 1); counter may be
// shared (nil allocates one). It is the serial entry point; see
// AggregateMultiLayerOpts for the parallel/pooled form.
func AggregateMultiLayer(t *MultiLayerTopology, models [][]float64, div secretshare.Divider, rng *rand.Rand, counter *transport.Counter) (*MultiLayerResult, error) {
	return AggregateMultiLayerOpts(t, models, div, rng, counter, MultiLayerOptions{})
}

// AggregateMultiLayerOpts is AggregateMultiLayer with worker fan-out and
// pooled scratch. models are borrowed read-only views — never copied,
// never written; a peer's slot in the internal value table is only ever
// overwritten by pointing it at a freshly allocated subtree sum. The
// caller's rng is consumed only for the serial per-subgroup seed draws
// (one Int63 per subgroup, in topology order), so the result depends on
// the seed and the topology alone, not on opts.Workers.
func AggregateMultiLayerOpts(t *MultiLayerTopology, models [][]float64, div secretshare.Divider, rng *rand.Rand, counter *transport.Counter, opts MultiLayerOptions) (*MultiLayerResult, error) {
	if len(models) != t.N {
		return nil, fmt.Errorf("core: %d models for %d peers", len(models), t.N)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if counter == nil {
		counter = transport.NewCounter()
	}
	dim := len(models[0])
	for i, m := range models {
		if len(m) != dim {
			return nil, fmt.Errorf("core: model %d has %d weights, want %d", i, len(m), dim)
		}
	}
	ms := opts.Scratch
	if ms == nil {
		ms = &MultiLayerScratch{}
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	before := counter.TotalBytes()

	// value[p] is peer p's current subtree sum: initially a borrowed view
	// of its own model, replaced by an owned vector once a subgroup SAC
	// below it completes.
	value := make([][]float64, t.N)
	copy(value, models)

	aggs := 0
	var errMu sync.Mutex
	var firstErr error
	fail := func(x int, err error) {
		errMu.Lock()
		if firstErr == nil {
			if x == 1 {
				firstErr = fmt.Errorf("core: top layer: %w", err)
			} else {
				firstErr = fmt.Errorf("core: layer %d: %w", x, err)
			}
		}
		errMu.Unlock()
	}

	// Bottom-up: deepest layer first, the single top group last. Within a
	// layer the subgroups touch disjoint value slots (each peer follows in
	// at most one group per layer; each leader slot is written by exactly
	// one group), so they run concurrently without synchronization beyond
	// the per-layer barrier.
	for x := t.Layers; x >= 1; x-- {
		groups := t.subgroupsByLayer[x-1]
		seeds := ms.seedBuf(len(groups))
		for range groups {
			seeds = append(seeds, rng.Int63())
		}
		ms.seeds = seeds
		process := func(lo, hi int) {
			w := ms.get(t.Degree, counter)
			defer ms.put(w)
			for gi := lo; gi < hi; gi++ {
				group := groups[gi]
				w.src.Seed(seeds[gi])
				sub := w.sub[:0]
				for _, p := range group {
					sub = append(sub, value[p])
				}
				res, err := sac.Run(w.mesh, sac.Config{
					N: len(group), K: len(group), Leader: 0, Mode: sac.ModeLeader,
					Divider: div, Rng: w.rng, Scratch: w.sc,
				}, sub, nil)
				if err != nil {
					fail(x, err)
					return
				}
				// SAC returns the average over the group; recover the sum so
				// weights of unequal subtrees stay exact. Result.Avg is always
				// freshly allocated, so it can be scaled in place and become
				// the leader's owned subtree sum.
				sum := res.Avg
				cnt := float64(len(res.Contributors))
				for j := range sum {
					sum[j] *= cnt
				}
				value[group[0]] = sum
			}
		}
		if workers == 1 {
			process(0, len(groups))
		} else {
			tensor.ParallelRowsN(len(groups), workers, process)
		}
		if firstErr != nil {
			return nil, firstErr
		}
		aggs += len(groups)
	}

	// The top group's sum is owned (it came out of a SAC), so the global
	// average can divide it in place.
	global := value[t.subgroupsByLayer[0][0][0]]
	for j := range global {
		global[j] /= float64(t.N)
	}

	// Distribute the global model down the tree: every peer except the
	// topmost leader receives it exactly once — (N−1)·|w|.
	for i := 0; i < t.N-1; i++ {
		counter.Record(KindBroadcast, int64(8*dim))
	}

	return &MultiLayerResult{
		Global:       global,
		Bytes:        counter.TotalBytes() - before,
		Aggregations: aggs,
	}, nil
}
