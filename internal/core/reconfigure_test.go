package core

import (
	"math/rand"
	"testing"
)

// Reconfigure is the round-boundary half of the continuous-churn story:
// after a membership change the next round must aggregate exactly under
// the new geometry, and a rejected geometry must leave the system on
// the old one.

func TestReconfigureBetweenRounds(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	sys, err := NewSystem(Config{Sizes: []int{3, 3}}, rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 6, 8)
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
		t.Fatalf("pre-churn round off by %v", d)
	}

	// A join grows subgroup 0, a leave shrinks subgroup 1, and a whole
	// new subgroup appears — all between rounds.
	if err := sys.Reconfigure([]int{4, 2, 3}, []int{3, 2, 2}); err != nil {
		t.Fatal(err)
	}
	cfg := sys.Config()
	if got := cfg.NumPeers(); got != 9 {
		t.Fatalf("NumPeers = %d after reconfigure, want 9", got)
	}
	models = randModels(r, 9, 8)
	res, err = sys.Aggregate(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
		t.Fatalf("post-churn round off by %v", d)
	}

	// Shrinking below the current scratch count works too.
	if err := sys.Reconfigure([]int{5}, nil); err != nil {
		t.Fatal(err)
	}
	models = randModels(r, 5, 8)
	res, err = sys.Aggregate(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
		t.Fatalf("shrunk round off by %v", d)
	}
}

func TestReconfigureRejectsBadGeometry(t *testing.T) {
	sys, err := NewSystem(Config{Sizes: []int{3, 3}, K: []int{2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2][]int{
		{{}, nil},           // no subgroups
		{{3, 0}, nil},       // zero-size subgroup
		{{3, 3, 3}, {2, 2}}, // threshold count mismatch
	} {
		if err := sys.Reconfigure(bad[0], bad[1]); err == nil {
			t.Fatalf("want error for sizes=%v k=%v", bad[0], bad[1])
		}
	}
	// The failed attempts left the old configuration in place.
	cfg := sys.Config()
	if len(cfg.Sizes) != 2 || cfg.Sizes[0] != 3 || len(cfg.K) != 1 || cfg.K[0] != 2 {
		t.Fatalf("config mutated by rejected reconfigure: %+v", cfg)
	}
	models := randModels(rand.New(rand.NewSource(33)), 6, 4)
	if _, err := sys.Aggregate(models, nil, nil); err != nil {
		t.Fatal(err)
	}
}
