package core

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/fl"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/sac"
	"repro/internal/telemetry"
)

// ModelFactory builds one architecture instance; each peer gets its own.
type ModelFactory func(rng *rand.Rand) (*nn.Model, error)

// TrainerConfig describes a full federated training run over the
// two-layer aggregation system (or the one-layer baseline).
type TrainerConfig struct {
	// Core is the two-layer topology. With Baseline true, the topology
	// is ignored except for the total peer count.
	Core Config
	// Baseline switches to the original one-layer SAC (Alg. 2).
	Baseline bool

	// Model builds each peer's network; Flat feeds [batch, pixels]
	// inputs (MLPs) instead of image tensors.
	Model ModelFactory
	Flat  bool

	// Data is the synthetic dataset spec; Dist is the paper's per-peer
	// distribution setting.
	Data dataset.Spec
	Dist dataset.Distribution

	// Rounds of federated learning; evaluation happens every EvalEvery
	// rounds (default 1). LearningRate is the Adam step size (paper:
	// 1e-4); Epochs and BatchSize parameterize the local update.
	Rounds       int
	EvalEvery    int
	LearningRate float64
	Epochs       int
	BatchSize    int

	// Workers bounds how many selected clients train concurrently each
	// round (mirroring Config.Parallel for the aggregation layer). 0 or 1
	// trains serially. Any value yields bit-identical results: each
	// client owns its model, optimizer, data partition and seeded RNGs,
	// and losses/weights are reduced in client-index order.
	Workers int

	// ClientFraction selects the fraction of peers that train each round
	// (Sec. III-A: the aggregate is over "randomly selected clients").
	// Unselected peers still hold the global model and participate in
	// SAC with a zero FedAvg weight. 0 means every peer trains.
	ClientFraction float64

	// CrashEvery, if positive, schedules one AfterShares dropout in a
	// random subgroup every CrashEvery rounds (fault-injection runs).
	CrashEvery int

	// DP, if non-nil, perturbs each peer's update before it enters the
	// aggregation (the paper's Sec. IV-D differential-privacy option):
	// the local−global delta is L2-clipped to DPClip and noised by the
	// mechanism. DPClip must be positive when DP is set.
	DP     dp.Mechanism
	DPClip float64

	// Seed drives model initialization, shuffling, dropout and share
	// randomness. DataSeed, when non-zero, fixes the dataset and the
	// per-peer partition independently of Seed, so different topologies
	// can be compared on identical data (as the paper's figures do).
	Seed     int64
	DataSeed int64
}

// Series holds per-evaluation metrics from a training run.
type Series struct {
	Round     []int
	TestAcc   []float64
	TrainLoss []float64
	// Bytes is cumulative aggregation traffic up to each evaluation.
	Bytes []int64
	// FinalGlobal is the global weight vector after the last round,
	// recorded so determinism checks can compare runs bit-for-bit.
	FinalGlobal []float64
}

// MovingAverage smooths values with a trailing window (the paper plots
// moving averages in Figs. 6–9).
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(xs))
	sum := 0.0
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// RunTraining executes the full federated loop: partition data, local
// updates, two-layer (or baseline) secure aggregation, distribution, and
// periodic evaluation of the global model on the shared test set.
func RunTraining(cfg TrainerConfig) (*Series, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: TrainerConfig.Model is required")
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("core: Rounds = %d", cfg.Rounds)
	}
	if cfg.EvalEvery < 1 {
		cfg.EvalEvery = 1
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 1e-4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dataSeed := cfg.DataSeed
	if dataSeed == 0 {
		dataSeed = cfg.Seed
	}
	dataRng := rand.New(rand.NewSource(dataSeed))

	cfg.Data.Seed = dataSeed
	train, test, err := dataset.Generate(cfg.Data)
	if err != nil {
		return nil, err
	}
	numPeers := cfg.Core.NumPeers()
	parts, err := dataset.Partition(train, numPeers, cfg.Dist, dataRng)
	if err != nil {
		return nil, err
	}

	clients := make([]*fl.Client, numPeers)
	for i := range clients {
		model, err := cfg.Model(rand.New(rand.NewSource(cfg.Seed*100 + int64(i))))
		if err != nil {
			return nil, err
		}
		clients[i] = fl.NewClient(i, model, optim.NewAdam(cfg.LearningRate), parts[i],
			fl.TrainConfig{Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, Flat: cfg.Flat},
			rand.New(rand.NewSource(cfg.Seed*200+int64(i))))
	}
	sys, err := NewSystem(cfg.Core, rng)
	if err != nil {
		return nil, err
	}
	evalModel, err := cfg.Model(rand.New(rand.NewSource(cfg.Seed * 300)))
	if err != nil {
		return nil, err
	}

	// All peers start from a shared initialization (as when round 0's
	// global model has been distributed).
	global := clients[0].Weights()

	if cfg.ClientFraction < 0 || cfg.ClientFraction > 1 {
		return nil, fmt.Errorf("core: ClientFraction %v out of [0,1]", cfg.ClientFraction)
	}

	reg := cfg.Core.Telemetry
	clientsSelected := reg.Counter("round/clients_selected")

	series := &Series{}
	losses := make([]float64, numPeers)
	errs := make([]error, numPeers)
	for round := 1; round <= cfg.Rounds; round++ {
		reg.Trace("round/start", 0, -1, telemetry.F("round", int64(round)))
		selected := selectClients(numPeers, cfg.ClientFraction, rng)
		models := make([][]float64, numPeers)
		counts := make([]float64, numPeers)

		// Unselected peers contribute the unchanged global vector (zero
		// FedAvg weight), so they share `global` directly instead of
		// round-tripping it through their model: the aggregation never
		// mutates input vectors, and a peer's own weights are refreshed
		// via SetWeights the next time it is selected.
		var selIdx []int
		for i := range clients {
			if selected[i] {
				selIdx = append(selIdx, i)
			} else {
				models[i] = global
			}
		}
		clientsSelected.Add(int64(len(selIdx)))

		trainOne := func(i int) {
			c := clients[i]
			if err := c.SetWeights(global); err != nil {
				errs[i] = err
				return
			}
			loss, err := c.TrainRound()
			if err != nil {
				errs[i] = err
				return
			}
			losses[i] = loss
			w := c.Weights()
			if cfg.DP != nil {
				w, err = dp.PrivatizeUpdate(w, global, cfg.DPClip, cfg.DP,
					rand.New(rand.NewSource(cfg.Seed*400+int64(round)*1000+int64(i))))
				if err != nil {
					errs[i] = err
					return
				}
			}
			models[i] = w
			counts[i] = float64(c.SampleCount())
		}

		// Train the selected clients, fanning out across Workers
		// goroutines when asked. Each client is self-contained (model,
		// optimizer, partition, per-client and per-(round,client) RNGs),
		// so execution order cannot affect any result; the reductions
		// below walk selIdx in ascending client index, making parallel
		// runs bit-identical to serial ones.
		workers := cfg.Workers
		if workers > len(selIdx) {
			workers = len(selIdx)
		}
		if workers <= 1 {
			for _, i := range selIdx {
				trainOne(i)
			}
		} else {
			idxCh := make(chan int)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range idxCh {
						trainOne(i)
					}
				}()
			}
			for _, i := range selIdx {
				idxCh <- i
			}
			close(idxCh)
			wg.Wait()
		}

		lossSum := 0.0
		trained := len(selIdx)
		for _, i := range selIdx {
			if errs[i] != nil {
				return nil, errs[i]
			}
			lossSum += losses[i]
		}

		var crash map[int]sac.CrashPlan
		if cfg.CrashEvery > 0 && round%cfg.CrashEvery == 0 && !cfg.Baseline {
			// Drop one random non-leader peer in a random subgroup after
			// it has shared (the Fig. 3 failure).
			g := rng.Intn(len(cfg.Core.Sizes))
			if cfg.Core.Sizes[g] > 1 {
				victim := 1 + rng.Intn(cfg.Core.Sizes[g]-1)
				crash = map[int]sac.CrashPlan{g: {victim: sac.AfterShares}}
			}
		}

		var res *RoundResult
		if cfg.Baseline {
			res, err = sys.BaselineAggregate(models)
		} else {
			res, err = sys.Aggregate(models, counts, crash)
		}
		if err != nil {
			return nil, err
		}
		global = res.Global
		reg.Trace("round/end", 0, -1,
			telemetry.F("round", int64(round)),
			telemetry.F("clients", int64(len(selIdx))),
			telemetry.F("bytes", res.Bytes))

		if round%cfg.EvalEvery == 0 || round == cfg.Rounds {
			if err := evalModel.SetWeightVector(global); err != nil {
				return nil, err
			}
			acc, _, err := fl.EvaluateModel(evalModel, test, cfg.Flat)
			if err != nil {
				return nil, err
			}
			series.Round = append(series.Round, round)
			series.TestAcc = append(series.TestAcc, acc)
			series.TrainLoss = append(series.TrainLoss, lossSum/float64(trained))
			series.Bytes = append(series.Bytes, sys.Counter().TotalBytes())
		}
	}
	series.FinalGlobal = global
	return series, nil
}

// selectClients marks the peers that train this round: all of them when
// fraction is 0 or 1, otherwise a uniform sample of ⌈fraction·n⌉ (at
// least one, so every round trains somebody).
func selectClients(n int, fraction float64, rng *rand.Rand) []bool {
	sel := make([]bool, n)
	if fraction == 0 || fraction >= 1 {
		for i := range sel {
			sel[i] = true
		}
		return sel
	}
	want := int(fraction*float64(n) + 0.5)
	if want < 1 {
		want = 1
	}
	for _, i := range rng.Perm(n)[:want] {
		sel[i] = true
	}
	return sel
}

// FinalAcc returns the last recorded test accuracy (0 if empty).
func (s *Series) FinalAcc() float64 {
	if len(s.TestAcc) == 0 {
		return 0
	}
	return s.TestAcc[len(s.TestAcc)-1]
}

// FinalLoss returns the last recorded training loss (0 if empty).
func (s *Series) FinalLoss() float64 {
	if len(s.TrainLoss) == 0 {
		return 0
	}
	return s.TrainLoss[len(s.TrainLoss)-1]
}
