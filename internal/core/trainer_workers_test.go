package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/dp"
)

func equalF64s(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func requireIdenticalSeries(t *testing.T, serial, parallel *Series, workers int) {
	t.Helper()
	if len(serial.Round) != len(parallel.Round) {
		t.Fatalf("workers=%d: %d evals vs %d serial", workers, len(parallel.Round), len(serial.Round))
	}
	for i := range serial.Round {
		if serial.Round[i] != parallel.Round[i] {
			t.Fatalf("workers=%d: eval %d at round %d, serial at %d", workers, i, parallel.Round[i], serial.Round[i])
		}
		if serial.Bytes[i] != parallel.Bytes[i] {
			t.Fatalf("workers=%d: bytes[%d] = %d, serial %d", workers, i, parallel.Bytes[i], serial.Bytes[i])
		}
	}
	if !equalF64s(serial.TestAcc, parallel.TestAcc) {
		t.Fatalf("workers=%d: accuracy series diverged:\nserial   %v\nparallel %v", workers, serial.TestAcc, parallel.TestAcc)
	}
	if !equalF64s(serial.TrainLoss, parallel.TrainLoss) {
		t.Fatalf("workers=%d: loss series diverged:\nserial   %v\nparallel %v", workers, serial.TrainLoss, parallel.TrainLoss)
	}
	if !equalF64s(serial.FinalGlobal, parallel.FinalGlobal) {
		t.Fatalf("workers=%d: final global weights diverged", workers)
	}
}

// TestWorkersBitIdenticalToSerial is the core determinism guarantee of
// the parallel training engine: any worker count produces the exact
// same Series — accuracy, loss, traffic, and final global weights — as
// a serial run, because clients are self-contained and reductions walk
// ascending client index.
func TestWorkersBitIdenticalToSerial(t *testing.T) {
	for _, fraction := range []float64{0, 0.5} {
		base := tinyTrainerConfig(false, []int{3, 3}, dataset.IID, 7)
		base.ClientFraction = fraction
		serial, err := RunTraining(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			cfg := base
			cfg.Workers = workers
			par, err := RunTraining(cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireIdenticalSeries(t, serial, par, workers)
		}
	}
}

// TestWorkersBitIdenticalWithDP extends the determinism guarantee to
// differentially private runs: the DP noise RNG is seeded per
// (round, client), so it cannot depend on scheduling order.
func TestWorkersBitIdenticalWithDP(t *testing.T) {
	base := tinyTrainerConfig(false, []int{3, 3}, dataset.IID, 8)
	base.DP = dp.Gaussian{Epsilon: 50, Delta: 1e-5, Clip: 5}
	base.DPClip = 5
	serial, err := RunTraining(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Workers = 3
	par, err := RunTraining(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalSeries(t, serial, par, 3)
}
