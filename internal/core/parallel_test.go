package core

import (
	"math/rand"
	"testing"

	"repro/internal/sac"
)

func TestParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	models := randModels(r, 20, 64)
	run := func(parallel bool) ([]float64, int64) {
		sys, err := NewSystem(Config{
			Sizes: []int{5, 5, 5, 5}, K: []int{3}, Parallel: parallel,
		}, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Aggregate(models, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Global, res.Bytes
	}
	seqGlobal, seqBytes := run(false)
	parGlobal, parBytes := run(true)
	// Identical rng seeding per subgroup ⇒ the same aggregate up to
	// floating-point summation order (the SAC engine sums subtotals in
	// map order) and exactly the same traffic.
	if d := maxAbsDiff(seqGlobal, parGlobal); d > 1e-9 {
		t.Fatalf("parallel aggregation changed the result by %v", d)
	}
	if seqBytes != parBytes {
		t.Fatalf("bytes differ: %d vs %d", seqBytes, parBytes)
	}
}

func TestParallelWithCrashes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	models := randModels(r, 9, 8)
	sys, err := NewSystem(Config{Sizes: []int{3, 3, 3}, K: []int{2}, Parallel: true}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	crash := map[int]sac.CrashPlan{
		0: {2: sac.AfterShares},
		2: {1: sac.AfterShares},
	}
	res, err := sys.Aggregate(models, nil, crash)
	if err != nil {
		t.Fatal(err)
	}
	// AfterShares dropouts still contribute their models.
	if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
		t.Fatalf("avg off by %v", d)
	}
}

func BenchmarkAggregateSequential(b *testing.B) {
	benchAggregate(b, false)
}

func BenchmarkAggregateParallel(b *testing.B) {
	benchAggregate(b, true)
}

func benchAggregate(b *testing.B, parallel bool) {
	b.Helper()
	r := rand.New(rand.NewSource(5))
	const dim = 1 << 14
	models := randModels(r, 30, dim)
	sys, err := NewSystem(Config{
		Sizes: []int{5, 5, 5, 5, 5, 5}, K: []int{3}, Parallel: parallel,
	}, rand.New(rand.NewSource(6)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Aggregate(models, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}
