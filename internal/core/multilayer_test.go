package core

import (
	"math/rand"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/secretshare"
)

func TestBuildMultiLayerTopology(t *testing.T) {
	for _, nx := range [][2]int{{2, 1}, {3, 2}, {3, 3}, {4, 2}, {5, 3}} {
		n, x := nx[0], nx[1]
		topo, err := BuildMultiLayerTopology(n, x)
		if err != nil {
			t.Fatal(err)
		}
		wantN, err := costmodel.MultiLayerPeers(n, x)
		if err != nil {
			t.Fatal(err)
		}
		if int64(topo.N) != wantN {
			t.Fatalf("n=%d X=%d: peers = %d, want %d (Eq. 6)", n, x, topo.N, wantN)
		}
		// Every subgroup has exactly n members, leader first; every peer
		// appears as a non-leader member at most once.
		seen := map[int]int{}
		for layer := 1; layer <= x; layer++ {
			groups, err := topo.Subgroups(layer)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range groups {
				if len(g) != n {
					t.Fatalf("layer %d: subgroup size %d, want %d", layer, len(g), n)
				}
				for i, p := range g {
					if i > 0 {
						seen[p]++
					}
				}
			}
		}
		for p, c := range seen {
			if c > 1 {
				t.Fatalf("peer %d is a follower in %d subgroups", p, c)
			}
		}
	}
	if _, err := BuildMultiLayerTopology(1, 2); err == nil {
		t.Fatal("want error for n=1")
	}
	if _, err := BuildMultiLayerTopology(3, 0); err == nil {
		t.Fatal("want error for 0 layers")
	}
}

func TestSubgroupsRangeCheck(t *testing.T) {
	topo, err := BuildMultiLayerTopology(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Subgroups(0); err == nil {
		t.Fatal("want range error")
	}
	if _, err := topo.Subgroups(3); err == nil {
		t.Fatal("want range error")
	}
}

func TestMultiLayerAggregateExactMean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, nx := range [][2]int{{2, 2}, {3, 2}, {3, 3}, {4, 2}} {
		n, x := nx[0], nx[1]
		topo, err := BuildMultiLayerTopology(n, x)
		if err != nil {
			t.Fatal(err)
		}
		models := randModels(r, topo.N, 8)
		res, err := AggregateMultiLayer(topo, models, nil, rand.New(rand.NewSource(2)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(res.Global, mean(models)); d > 1e-8 {
			t.Fatalf("n=%d X=%d: X-layer avg off by %v", n, x, d)
		}
	}
}

// Eq. 10: the measured traffic of a real X-layer aggregation equals
// (N−1)(n+2)·|w| exactly.
func TestEq10MatchesMeasuredBytes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	dim := 16
	for _, nx := range [][2]int{{3, 1}, {3, 2}, {3, 3}, {4, 2}, {5, 2}} {
		n, x := nx[0], nx[1]
		topo, err := BuildMultiLayerTopology(n, x)
		if err != nil {
			t.Fatal(err)
		}
		models := randModels(r, topo.N, dim)
		res, err := AggregateMultiLayer(topo, models, nil, rand.New(rand.NewSource(4)), nil)
		if err != nil {
			t.Fatal(err)
		}
		units, err := costmodel.MultiLayerUnits(n, x)
		if err != nil {
			t.Fatal(err)
		}
		want := units * int64(8*dim)
		if res.Bytes != want {
			t.Fatalf("n=%d X=%d: bytes = %d, want %d (Eq. 10)", n, x, res.Bytes, want)
		}
		// And the aggregation count matches the Sec. VII-C derivation.
		wantAggs := 1
		term := n
		for k := 1; k <= x-1; k++ {
			wantAggs += term
			term *= n - 1
		}
		if res.Aggregations != wantAggs {
			t.Fatalf("n=%d X=%d: %d aggregations, want %d", n, x, res.Aggregations, wantAggs)
		}
	}
}

func TestMultiLayerWithMaskDivider(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	topo, err := BuildMultiLayerTopology(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, topo.N, 4)
	res, err := AggregateMultiLayer(topo, models, secretshare.MaskDivider{Scale: 10}, rand.New(rand.NewSource(6)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Global, mean(models)); d > 1e-8 {
		t.Fatalf("avg off by %v", d)
	}
}

func TestMultiLayerInputValidation(t *testing.T) {
	topo, err := BuildMultiLayerTopology(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	if _, err := AggregateMultiLayer(topo, randModels(r, 3, 4), nil, nil, nil); err == nil {
		t.Fatal("want model-count error")
	}
	bad := randModels(r, topo.N, 4)
	bad[2] = []float64{1}
	if _, err := AggregateMultiLayer(topo, bad, nil, nil, nil); err == nil {
		t.Fatal("want ragged-model error")
	}
}
