package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/compress"
)

// runRound builds a fresh system with the given compression config and
// runs one default round over deterministically seeded models.
func runRound(t *testing.T, cc compress.Config, secureUpper bool) (*System, *RoundResult) {
	t.Helper()
	sizes := []int{4, 4, 4}
	sys, err := NewSystem(Config{Sizes: sizes, Compression: cc, SecureUpper: secureUpper}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(rand.New(rand.NewSource(8)), 12, 96)
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sys, res
}

// TestCompressionOffIsByteIdentical pins the opt-in contract: the zero
// Config.Compression reproduces the uncompressed rounds bit for bit —
// same global model, same byte counts, no bound reported.
func TestCompressionOffIsByteIdentical(t *testing.T) {
	sysA, resA := runRound(t, compress.Config{}, false)
	sysB, resB := runRound(t, compress.Config{Scheme: compress.None}, false)
	if !reflect.DeepEqual(resA.Global, resB.Global) {
		t.Fatal("zero-value compression changed the global model")
	}
	if resA.Bytes != resB.Bytes || sysA.Counter().TotalBytes() != sysB.Counter().TotalBytes() {
		t.Fatalf("zero-value compression changed traffic: %d vs %d", resA.Bytes, resB.Bytes)
	}
	for _, kind := range []string{KindUpload, KindDownload, KindBroadcast} {
		if sysA.Counter().Bytes(kind) != sysB.Counter().Bytes(kind) {
			t.Fatalf("%s bytes differ", kind)
		}
	}
	if resA.GlobalBound != nil || resB.GlobalBound != nil {
		t.Fatal("GlobalBound set without compression")
	}
}

// TestCompressionRoundSemantics checks the lossy round: distribution
// kinds are charged the encoded unit, the global model is the decoded
// copy (within the reported bound of the exact result), and SAC traffic
// is untouched.
func TestCompressionRoundSemantics(t *testing.T) {
	const dim = 96
	cc := compress.Config{Scheme: compress.Quant16}
	sysRef, ref := runRound(t, compress.Config{}, false)
	sys, res := runRound(t, cc, false)

	if res.GlobalBound == nil {
		t.Fatal("GlobalBound not reported")
	}
	if res.GlobalBound.Dim != dim {
		t.Fatalf("bound dim %d, want %d", res.GlobalBound.Dim, dim)
	}
	// Same seeds → identical subgroup SACs; the global model differs from
	// the exact one only by compression error. Uploads were themselves
	// lossy (quantized before FedAvg), so allow upload + distribution
	// error: each within its own per-coordinate bound.
	if !reflect.DeepEqual(res.SubgroupAvgs, ref.SubgroupAvgs) {
		t.Fatal("compression changed the subgroup SAC results")
	}
	maxDiff := 0.0
	for j := range ref.Global {
		if d := math.Abs(res.Global[j] - ref.Global[j]); d > maxDiff {
			maxDiff = d
		}
	}
	// Two lossy hops (upload quantization then global quantization) at
	// int16 width keep the drift tiny but nonzero.
	if maxDiff == 0 {
		t.Fatal("compressed round is bit-identical — compression did not engage")
	}
	if maxDiff > 4*res.GlobalBound.MaxCoordErr+1e-9 {
		t.Fatalf("global drifted %g, want within ~%g", maxDiff, 4*res.GlobalBound.MaxCoordErr)
	}

	// Byte accounting: distribution kinds at the encoded unit, SAC kinds
	// identical to the reference round.
	unit := cc.MessageBytes(dim)
	for _, kind := range []string{KindUpload, KindDownload, KindBroadcast} {
		msgs := sys.Counter().Messages(kind)
		if msgs == 0 {
			t.Fatalf("%s: no traffic", kind)
		}
		if got := sys.Counter().Bytes(kind); got != msgs*unit {
			t.Fatalf("%s: %dB over %d msgs, want %d per message", kind, got, msgs, unit)
		}
	}
	if sys.Counter().Bytes("sac/share") != sysRef.Counter().Bytes("sac/share") {
		t.Fatal("compression leaked into SAC share traffic")
	}
	if res.Bytes >= ref.Bytes {
		t.Fatalf("compressed round not cheaper: %d vs %d", res.Bytes, ref.Bytes)
	}
}

// TestCompressionSecureUpper: with the secure upper layer, uploads are
// SAC shares and stay exact; only the download/broadcast legs compress.
func TestCompressionSecureUpper(t *testing.T) {
	const dim = 96
	cc := compress.Config{Scheme: compress.Quant8}
	sys, res := runRound(t, cc, true)
	if res.GlobalBound == nil {
		t.Fatal("GlobalBound not reported under SecureUpper")
	}
	unit := cc.MessageBytes(dim)
	for _, kind := range []string{KindDownload, KindBroadcast} {
		msgs := sys.Counter().Messages(kind)
		if msgs == 0 {
			t.Fatalf("%s: no traffic", kind)
		}
		if got := sys.Counter().Bytes(kind); got != msgs*unit {
			t.Fatalf("%s: %dB over %d msgs, want %d per message", kind, got, msgs, unit)
		}
	}
	if sys.Counter().Messages(KindUpload) != 0 {
		t.Fatal("SecureUpper still recorded plain uploads")
	}
	if sys.Counter().Bytes("sac/share") == 0 {
		t.Fatal("SecureUpper recorded no share traffic")
	}
}

// TestCompressionConfigValidated: a malformed compression config is
// rejected at system construction.
func TestCompressionConfigValidated(t *testing.T) {
	_, err := NewSystem(Config{Sizes: []int{3}, Compression: compress.Config{Scheme: compress.Scheme(9)}}, nil)
	if err == nil {
		t.Fatal("invalid compression scheme accepted")
	}
	_, err = NewSystem(Config{Sizes: []int{3}, Compression: compress.Config{Scheme: compress.TopK, Frac: 2}}, nil)
	if err == nil {
		t.Fatal("invalid top-k fraction accepted")
	}
}
