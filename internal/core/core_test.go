package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/sac"
)

func randModels(r *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		m := make([]float64, dim)
		for j := range m {
			m[j] = r.NormFloat64()
		}
		out[i] = m
	}
	return out
}

func mean(models [][]float64) []float64 {
	avg := make([]float64, len(models[0]))
	for _, m := range models {
		for j, v := range m {
			avg[j] += v
		}
	}
	for j := range avg {
		avg[j] /= float64(len(models))
	}
	return avg
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestSplitPeers(t *testing.T) {
	// The paper's example (Fig. 13): N=30, m=4 → 8, 8, 7, 7.
	sizes, err := SplitPeers(30, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 8, 7, 7}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
	// N=10, m=3 → 4, 3, 3 (the paper's Fig. 6: subgroups of 3, 3, 4).
	sizes, err = SplitPeers(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 10 || len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	if _, err := SplitPeers(3, 5); err == nil {
		t.Fatal("want error for m > n")
	}
	if _, err := SplitPeers(0, 1); err == nil {
		t.Fatal("want error for n = 0")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Sizes: []int{3, 0}},
		{Sizes: []int{3, 3}, K: []int{1, 2, 3}},
		{Sizes: []int{3}, Fraction: 1.5},
		{Sizes: []int{3}, Fraction: -0.1},
	}
	for i, cfg := range bad {
		if _, err := NewSystem(cfg, nil); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}

func TestPeerSubgroup(t *testing.T) {
	cfg := Config{Sizes: []int{3, 4, 3}}
	g, i, err := cfg.PeerSubgroup(0)
	if err != nil || g != 0 || i != 0 {
		t.Fatalf("peer 0 → (%d,%d,%v)", g, i, err)
	}
	g, i, err = cfg.PeerSubgroup(5)
	if err != nil || g != 1 || i != 2 {
		t.Fatalf("peer 5 → (%d,%d,%v)", g, i, err)
	}
	g, i, err = cfg.PeerSubgroup(9)
	if err != nil || g != 2 || i != 2 {
		t.Fatalf("peer 9 → (%d,%d,%v)", g, i, err)
	}
	if _, _, err := cfg.PeerSubgroup(10); err == nil {
		t.Fatal("want range error")
	}
}

// Two-layer aggregation with equal sample counts must equal the plain
// mean of all models — the paper's claim that two-layer SAC matches the
// baseline's aggregate exactly.
func TestTwoLayerEqualsGlobalMean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, sizes := range [][]int{{3, 3, 4}, {5, 5}, {2, 2, 2, 2, 2}} {
		cfg := Config{Sizes: sizes}
		sys, err := NewSystem(cfg, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		models := randModels(r, cfg.NumPeers(), 16)
		res, err := sys.Aggregate(models, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
			t.Fatalf("sizes %v: two-layer avg off by %v", sizes, d)
		}
		if len(res.Participated) != len(sizes) {
			t.Fatalf("participated = %v", res.Participated)
		}
	}
}

// With k-out-of-n subgroups the equality still holds.
func TestTwoLayerKOutOfNEqualsMean(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cfg := Config{Sizes: []int{5, 5, 5}, K: []int{3}}
	sys, err := NewSystem(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 15, 8)
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
		t.Fatalf("avg off by %v", d)
	}
}

// Eq. 4: total two-layer cost with n-out-of-n sharing is (mn²+mn−2)|w|.
func TestEq4MatchesMeasuredBytes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	dim := 32
	for _, mn := range [][2]int{{2, 3}, {3, 4}, {5, 2}, {2, 5}} {
		m, n := mn[0], mn[1]
		sizes := make([]int, m)
		for i := range sizes {
			sizes[i] = n
		}
		sys, err := NewSystem(Config{Sizes: sizes}, rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		models := randModels(r, m*n, dim)
		res, err := sys.Aggregate(models, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		w := int64(8 * dim)
		want := int64(m*n*n+m*n-2) * w
		if res.Bytes != want {
			t.Fatalf("m=%d n=%d: bytes = %d, want %d (Eq. 4)", m, n, res.Bytes, want)
		}
	}
}

// Eq. 5: with k-out-of-n sharing the total is {(n²−kn+k)N + km − 2}|w|.
func TestEq5MatchesMeasuredBytes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	dim := 16
	for _, mnk := range [][3]int{{2, 3, 2}, {3, 5, 3}, {4, 5, 5}} {
		m, n, k := mnk[0], mnk[1], mnk[2]
		sizes := make([]int, m)
		for i := range sizes {
			sizes[i] = n
		}
		sys, err := NewSystem(Config{Sizes: sizes, K: []int{k}}, rand.New(rand.NewSource(8)))
		if err != nil {
			t.Fatal(err)
		}
		N := m * n
		models := randModels(r, N, dim)
		res, err := sys.Aggregate(models, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		w := int64(8 * dim)
		want := int64((n*n-k*n+k)*N+k*m-2) * w
		if res.Bytes != want {
			t.Fatalf("m=%d n=%d k=%d: bytes = %d, want %d (Eq. 5)", m, n, k, res.Bytes, want)
		}
	}
}

func TestBaselineCostIsQuadratic(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	dim := 16
	sys, err := NewSystem(Config{Sizes: []int{10}}, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 10, dim)
	res, err := sys.BaselineAggregate(models)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2*10*9) * int64(8*dim)
	if res.Bytes != want {
		t.Fatalf("baseline bytes = %d, want %d", res.Bytes, want)
	}
	if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
		t.Fatalf("baseline avg off by %v", d)
	}
}

func TestFractionLimitsParticipation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cfg := Config{Sizes: []int{5, 5, 5, 5}, Fraction: 0.5}
	sys, err := NewSystem(cfg, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 20, 8)
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Participated) != 2 {
		t.Fatalf("participated = %v, want 2 of 4 subgroups", res.Participated)
	}
	// The global model equals the mean over the participating subgroups'
	// peers only.
	var who []int
	for _, g := range res.Participated {
		for i := 0; i < 5; i++ {
			who = append(who, g*5+i)
		}
	}
	sel := make([][]float64, 0, len(who))
	for _, i := range who {
		sel = append(sel, models[i])
	}
	if d := maxAbsDiff(res.Global, mean(sel)); d > 1e-9 {
		t.Fatalf("fractional avg off by %v", d)
	}
}

func TestWeightedBySampleCounts(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	cfg := Config{Sizes: []int{2, 2}}
	sys, err := NewSystem(cfg, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 4, 4)
	counts := []float64{10, 10, 30, 30} // subgroup 1 has 3× the data
	res, err := sys.Aggregate(models, counts, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub0 := mean(models[:2])
	sub1 := mean(models[2:])
	want := make([]float64, 4)
	for j := range want {
		want[j] = 0.25*sub0[j] + 0.75*sub1[j]
	}
	if d := maxAbsDiff(res.Global, want); d > 1e-9 {
		t.Fatalf("weighted avg off by %v", d)
	}
}

func TestDropoutDuringAggregation(t *testing.T) {
	// One peer in subgroup 0 drops after sharing (k-out-of-n handles
	// it); its model still contributes.
	r := rand.New(rand.NewSource(15))
	cfg := Config{Sizes: []int{3, 3}, K: []int{2}}
	sys, err := NewSystem(cfg, rand.New(rand.NewSource(16)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 6, 8)
	crash := map[int]sac.CrashPlan{0: {2: sac.AfterShares}}
	res, err := sys.Aggregate(models, nil, crash)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
		t.Fatalf("avg off by %v (dropout model must still count)", d)
	}
}

func TestFailedSubgroupExcluded(t *testing.T) {
	// Subgroup 0 runs n-out-of-n and a peer crashes → its SAC aborts;
	// the round proceeds with subgroup 1 only.
	r := rand.New(rand.NewSource(17))
	cfg := Config{Sizes: []int{3, 3}}
	sys, err := NewSystem(cfg, rand.New(rand.NewSource(18)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 6, 8)
	crash := map[int]sac.CrashPlan{0: {1: sac.BeforeShares}}
	res, err := sys.Aggregate(models, nil, crash)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Participated) != 1 || res.Participated[0] != 1 {
		t.Fatalf("participated = %v, want [1]", res.Participated)
	}
	if d := maxAbsDiff(res.Global, mean(models[3:])); d > 1e-9 {
		t.Fatalf("avg off by %v", d)
	}
}

func TestAllSubgroupsFailed(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	cfg := Config{Sizes: []int{2}}
	sys, err := NewSystem(cfg, rand.New(rand.NewSource(20)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 2, 4)
	crash := map[int]sac.CrashPlan{0: {1: sac.BeforeShares}}
	_, err = sys.Aggregate(models, nil, crash)
	if !errors.Is(err, ErrNoSubgroups) {
		t.Fatalf("err = %v, want ErrNoSubgroups", err)
	}
}

func TestAggregateInputValidation(t *testing.T) {
	sys, err := NewSystem(Config{Sizes: []int{2, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(21))
	models := randModels(r, 3, 4) // wrong count
	if _, err := sys.Aggregate(models, nil, nil); err == nil {
		t.Fatal("want model-count error")
	}
	models = randModels(r, 4, 4)
	if _, err := sys.Aggregate(models, []float64{1, 2}, nil); err == nil {
		t.Fatal("want count-length error")
	}
	if _, err := sys.BaselineAggregate(nil); err == nil {
		t.Fatal("want empty-models error")
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ma := MovingAverage(xs, 2)
	want := []float64{1, 1.5, 2.5, 3.5, 4.5}
	for i := range want {
		if math.Abs(ma[i]-want[i]) > 1e-12 {
			t.Fatalf("ma = %v, want %v", ma, want)
		}
	}
	if got := MovingAverage(xs, 0); got[0] != 1 || got[4] != 5 {
		t.Fatalf("window 0 must behave as 1: %v", got)
	}
	if got := MovingAverage(nil, 3); len(got) != 0 {
		t.Fatal("empty input must give empty output")
	}
}
