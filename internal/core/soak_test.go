package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dp"
	"repro/internal/fl"
	"repro/internal/nn"
)

// Soak: every optional feature at once — fault-tolerant subgroups with
// periodic dropouts, slow subgroups (p<1), partial client participation,
// weak DP noise, robust upper-layer aggregation and parallel subgroup
// execution — over a longer run. The system must stay numerically sane
// and still learn.
func TestSoakAllFeaturesTogether(t *testing.T) {
	cfg := TrainerConfig{
		Core: Config{
			Sizes:      []int{3, 3, 3, 3},
			K:          []int{2},
			Fraction:   0.75,
			Parallel:   true,
			Aggregator: fl.TrimmedMean{Trim: 0.1},
		},
		Model: func(rng *rand.Rand) (*nn.Model, error) {
			return nn.MLP(64, []int{24}, 4, rng), nil
		},
		Flat:           true,
		Data:           dataset.Tiny(4, 600, 200, 91),
		Dist:           dataset.NonIID5,
		Rounds:         30,
		EvalEvery:      5,
		LearningRate:   2e-3,
		BatchSize:      20,
		CrashEvery:     3,
		ClientFraction: 0.8,
		DP:             dp.Gaussian{Epsilon: 200, Delta: 1e-5, Clip: 2},
		DPClip:         2,
		Seed:           91,
	}
	s, err := RunTraining(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.FinalAcc() < 0.5 {
		t.Fatalf("soak accuracy = %v", s.FinalAcc())
	}
	for i, acc := range s.TestAcc {
		if acc < 0 || acc > 1 {
			t.Fatalf("eval %d accuracy out of range: %v", i, acc)
		}
	}
	for i, loss := range s.TrainLoss {
		if loss != loss || loss < 0 { // NaN or negative
			t.Fatalf("eval %d loss invalid: %v", i, loss)
		}
	}
}

// Determinism: identical configs produce identical series (the basis of
// the reproducibility claims in EXPERIMENTS.md). Parallel mode is
// excluded — subgroup goroutines may interleave counter updates but the
// per-round bytes and results stay equal; here we check the strict
// sequential path bit-for-bit.
func TestTrainingDeterministic(t *testing.T) {
	run := func() *Series {
		cfg := tinyTrainerConfig(false, []int{3, 3}, dataset.NonIID0, 92)
		cfg.Rounds = 8
		s, err := RunTraining(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if len(a.TestAcc) != len(b.TestAcc) {
		t.Fatal("series lengths differ")
	}
	for i := range a.TestAcc {
		if a.TestAcc[i] != b.TestAcc[i] || a.TrainLoss[i] != b.TrainLoss[i] || a.Bytes[i] != b.Bytes[i] {
			t.Fatalf("series diverge at eval %d", i)
		}
	}
}
