package core

import (
	"math/rand"
	"testing"
)

// Boundary settings where the measured wire bytes must still match the
// closed forms of Sec. VII: a single subgroup (m=1, the FedAvg layer is
// vestigial), full threshold (k=n, Eq. 5 collapses onto Eq. 4), an
// out-of-range threshold (clamped to n), and uneven subgroup sizes from
// SplitPeers.

func TestEq4MeasuredBytesSingleSubgroup(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	dim := 8
	for _, n := range []int{2, 4, 7} {
		sys, err := NewSystem(Config{Sizes: []int{n}}, rand.New(rand.NewSource(22)))
		if err != nil {
			t.Fatal(err)
		}
		models := randModels(r, n, dim)
		res, err := sys.Aggregate(models, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(n*n+n-2) * int64(8*dim)
		if res.Bytes != want {
			t.Fatalf("m=1 n=%d: bytes = %d, want %d (Eq. 4)", n, res.Bytes, want)
		}
		if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
			t.Fatalf("m=1 n=%d: avg off by %v", n, d)
		}
	}
}

func TestEq5MeasuredBytesAtFullThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	dim := 8
	for _, mn := range [][2]int{{2, 3}, {3, 4}} {
		m, n := mn[0], mn[1]
		sizes := make([]int, m)
		for i := range sizes {
			sizes[i] = n
		}
		sys, err := NewSystem(Config{Sizes: sizes, K: []int{n}}, rand.New(rand.NewSource(24)))
		if err != nil {
			t.Fatal(err)
		}
		models := randModels(r, m*n, dim)
		res, err := sys.Aggregate(models, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		// k=n makes Eq. 5 equal Eq. 4 — verify against the latter.
		want := int64(m*n*n+m*n-2) * int64(8*dim)
		if res.Bytes != want {
			t.Fatalf("m=%d n=%d k=n: bytes = %d, want %d", m, n, res.Bytes, want)
		}
	}
}

func TestOversizedThresholdClampsToN(t *testing.T) {
	// K beyond the subgroup size is clamped to n, so the round must both
	// succeed and cost exactly the n-out-of-n amount.
	r := rand.New(rand.NewSource(25))
	m, n, dim := 2, 3, 4
	sys, err := NewSystem(Config{Sizes: []int{n, n}, K: []int{99}}, rand.New(rand.NewSource(26)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, m*n, dim)
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(m*n*n+m*n-2) * int64(8*dim)
	if res.Bytes != want {
		t.Fatalf("clamped k: bytes = %d, want %d", res.Bytes, want)
	}
	if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
		t.Fatalf("clamped k: avg off by %v", d)
	}
}

func TestUnevenSplitMeasuredBytes(t *testing.T) {
	// SplitPeers(7,3) → {3,2,2}; the measured cost must match the uneven
	// closed form Σ(n²−1) + Σ(n−1) + 2(m−1).
	sizes, err := SplitPeers(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 2}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("SplitPeers(7,3) = %v, want %v", sizes, want)
		}
	}
	r := rand.New(rand.NewSource(27))
	dim := 8
	sys, err := NewSystem(Config{Sizes: sizes}, rand.New(rand.NewSource(28)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 7, dim)
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var units int64
	for _, n := range sizes {
		units += int64(n*n-1) + int64(n-1)
	}
	units += 2 * int64(len(sizes)-1)
	if wantB := units * int64(8*dim); res.Bytes != wantB {
		t.Fatalf("uneven %v: bytes = %d, want %d", sizes, res.Bytes, wantB)
	}
	if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
		t.Fatalf("uneven %v: avg off by %v", sizes, d)
	}
}

func TestSplitPeersMoreSubgroupsThanPeers(t *testing.T) {
	// N < m cannot be split; the error must surface rather than yielding
	// empty subgroups.
	if _, err := SplitPeers(2, 5); err == nil {
		t.Fatal("SplitPeers(2,5): want error")
	}
}
