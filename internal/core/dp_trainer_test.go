package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/dp"
)

func TestRunTrainingWithDP(t *testing.T) {
	cfg := tinyTrainerConfig(false, []int{3, 3}, dataset.IID, 21)
	// Weak noise: learning must still work.
	cfg.DP = dp.Gaussian{Epsilon: 50, Delta: 1e-5, Clip: 5}
	cfg.DPClip = 5
	cfg.Rounds = 12
	s, err := RunTraining(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.FinalAcc() < 0.5 {
		t.Fatalf("accuracy with weak DP noise = %v", s.FinalAcc())
	}
}

func TestDPNoiseHurtsUtility(t *testing.T) {
	// The privacy/utility trade-off: strong noise must hurt accuracy
	// relative to the noiseless run on the same seed.
	clean := tinyTrainerConfig(false, []int{3, 3}, dataset.IID, 22)
	clean.Rounds = 10
	cs, err := RunTraining(clean)
	if err != nil {
		t.Fatal(err)
	}
	noisy := tinyTrainerConfig(false, []int{3, 3}, dataset.IID, 22)
	noisy.Rounds = 10
	noisy.DP = dp.Gaussian{Epsilon: 0.1, Delta: 1e-5, Clip: 0.5}
	noisy.DPClip = 0.5
	ns, err := RunTraining(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if ns.FinalAcc() >= cs.FinalAcc() {
		t.Fatalf("strong DP noise did not reduce accuracy: %v vs %v", ns.FinalAcc(), cs.FinalAcc())
	}
}

func TestRunTrainingDPValidation(t *testing.T) {
	cfg := tinyTrainerConfig(false, []int{3}, dataset.IID, 23)
	cfg.DP = dp.Gaussian{Epsilon: 1, Delta: 1e-5, Clip: 1}
	cfg.DPClip = 0 // invalid with DP set
	if _, err := RunTraining(cfg); err == nil {
		t.Fatal("want error for DP without a positive clip bound")
	}
}
