package core

import (
	"math/rand"
	"testing"

	"repro/internal/costmodel"
)

func TestSecureUpperEqualsGlobalMean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg := Config{Sizes: []int{3, 3, 4}, SecureUpper: true}
	sys, err := NewSystem(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 10, 16)
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
		t.Fatalf("secure-upper avg off by %v", d)
	}
}

func TestSecureUpperWeighted(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cfg := Config{Sizes: []int{2, 2}, SecureUpper: true}
	sys, err := NewSystem(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 4, 4)
	counts := []float64{10, 10, 30, 30}
	res, err := sys.Aggregate(models, counts, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub0, sub1 := mean(models[:2]), mean(models[2:])
	want := make([]float64, 4)
	for j := range want {
		want[j] = 0.25*sub0[j] + 0.75*sub1[j]
	}
	if d := maxAbsDiff(res.Global, want); d > 1e-9 {
		t.Fatalf("weighted secure-upper avg off by %v", d)
	}
}

// The SecureUpper cost matches its closed form exactly.
func TestSecureUpperCostMatchesFormula(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	dim := 8
	for _, mn := range [][2]int{{2, 3}, {3, 4}, {4, 2}} {
		m, n := mn[0], mn[1]
		sizes := make([]int, m)
		for i := range sizes {
			sizes[i] = n
		}
		sys, err := NewSystem(Config{Sizes: sizes, SecureUpper: true}, rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		models := randModels(r, m*n, dim)
		res, err := sys.Aggregate(models, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		units, err := costmodel.TwoLayerSecureUpperUnits(m, n)
		if err != nil {
			t.Fatal(err)
		}
		if want := units * int64(8*dim); res.Bytes != want {
			t.Fatalf("m=%d n=%d: bytes = %d, want %d", m, n, res.Bytes, want)
		}
	}
	if _, err := costmodel.TwoLayerSecureUpperUnits(0, 3); err == nil {
		t.Fatal("want error for m=0")
	}
}

// SecureUpper costs more than plain FedAvg on top but still far less
// than the one-layer baseline — the paper's suggested trade-off.
func TestSecureUpperCostOrdering(t *testing.T) {
	for _, mn := range [][2]int{{3, 3}, {5, 5}, {10, 3}} {
		m, n := mn[0], mn[1]
		plain, err := costmodel.TwoLayerUnits(m, n)
		if err != nil {
			t.Fatal(err)
		}
		secure, err := costmodel.TwoLayerSecureUpperUnits(m, n)
		if err != nil {
			t.Fatal(err)
		}
		base, err := costmodel.BaselineUnits(m * n)
		if err != nil {
			t.Fatal(err)
		}
		if secure <= plain {
			t.Fatalf("m=%d n=%d: secure upper %d not above plain %d", m, n, secure, plain)
		}
		if secure >= base {
			t.Fatalf("m=%d n=%d: secure upper %d not below baseline %d", m, n, secure, base)
		}
	}
}

func TestSecureUpperSingleParticipant(t *testing.T) {
	// With one subgroup there is no upper-layer exchange at all.
	r := rand.New(rand.NewSource(7))
	sys, err := NewSystem(Config{Sizes: []int{4}, SecureUpper: true}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 4, 4)
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Global, mean(models)); d > 1e-9 {
		t.Fatalf("avg off by %v", d)
	}
	// Traffic: subgroup SAC (n²−1) + broadcast (n−1) only.
	want := int64(4*4-1+3) * int64(8*4)
	if res.Bytes != want {
		t.Fatalf("bytes = %d, want %d", res.Bytes, want)
	}
}

func TestSecureUpperWithFraction(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cfg := Config{Sizes: []int{3, 3, 3, 3}, SecureUpper: true, Fraction: 0.5}
	sys, err := NewSystem(cfg, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 12, 4)
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Participated) != 2 {
		t.Fatalf("participated = %v", res.Participated)
	}
	var who []int
	for _, g := range res.Participated {
		for i := 0; i < 3; i++ {
			who = append(who, g*3+i)
		}
	}
	sel := make([][]float64, 0, len(who))
	for _, i := range who {
		sel = append(sel, models[i])
	}
	if d := maxAbsDiff(res.Global, mean(sel)); d > 1e-9 {
		t.Fatalf("fractional secure-upper avg off by %v", d)
	}
}
