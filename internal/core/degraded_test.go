package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// TestAggregateRoundDegraded: a subgroup flagged as quorumless is
// skipped — no SAC, no leader validation, no distribution bytes — and
// the round still aggregates the healthy subgroups exactly.
func TestAggregateRoundDegraded(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	reg := telemetry.New()
	sys, err := NewSystem(Config{Sizes: []int{3, 3, 3}, Telemetry: reg}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(r, 9, 6)
	// Leader index 9 is out of range for a size-3 subgroup; because the
	// subgroup is degraded, it must not be validated (a quorumless
	// subgroup can legitimately report no leader).
	res, err := sys.AggregateRound(models, RoundSpec{
		Leaders:   []int{0, 9, 0},
		FedLeader: -1,
		Degraded:  []int{1, 1}, // duplicates collapse
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Degraded, []int{1}) {
		t.Fatalf("Degraded = %v, want [1]", res.Degraded)
	}
	if !reflect.DeepEqual(res.Participated, []int{0, 2}) {
		t.Fatalf("Participated = %v, want [0 2]", res.Participated)
	}
	if res.SubgroupAvgs[1] != nil {
		t.Fatal("degraded subgroup must not produce a SAC average")
	}
	// Exact FedAvg over the two healthy subgroups only.
	want := mean(append(append([][]float64{}, models[0:3]...), models[6:9]...))
	if d := maxAbsDiff(res.Global, want); d > 1e-9 {
		t.Fatalf("global off by %v", d)
	}
	if got := reg.Counter("round/subgroups_degraded").Value(); got != 1 {
		t.Fatalf("round/subgroups_degraded = %d, want 1", got)
	}

	// Byte accounting: a fully healthy 3×3 round costs strictly more
	// than the degraded one (subgroup 1 contributed zero traffic).
	healthy, err := sys.AggregateRound(models, RoundSpec{FedLeader: -1})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Bytes <= res.Bytes {
		t.Fatalf("healthy round bytes %d should exceed degraded round bytes %d", healthy.Bytes, res.Bytes)
	}

	// Validation still applies to the spec itself.
	if _, err := sys.AggregateRound(models, RoundSpec{Degraded: []int{3}}); err == nil {
		t.Fatal("want error for out-of-range degraded index")
	}
	// All subgroups degraded → nothing to aggregate.
	if _, err := sys.AggregateRound(models, RoundSpec{Degraded: []int{0, 1, 2}}); !errors.Is(err, ErrNoSubgroups) {
		t.Fatalf("err = %v, want ErrNoSubgroups", err)
	}
}
