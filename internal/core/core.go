// Package core implements the paper's primary contribution: the two-layer
// model-parameter aggregation system (Sec. IV, Alg. 3).
//
// Peers are divided into subgroups. Each round, every subgroup runs a
// (fault-tolerant, k-out-of-n) SAC aggregation with its leader collecting
// the subgroup average; the subgroup leaders form the FedAvg layer, whose
// leader computes the sample-count-weighted average of the subgroup
// models and broadcasts it back through the subgroup leaders to every
// peer. The FedAvg leader may aggregate only a fraction p of the
// subgroups (Sec. VI-A3's "slow subgroups" timeout behaviour).
//
// All traffic flows through byte-counting transports, so each round's
// measured communication can be compared against the closed forms of
// Sec. VII (implemented in internal/costmodel).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/compress"
	"repro/internal/fl"
	"repro/internal/sac"
	"repro/internal/secretshare"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Traffic kinds recorded for the FedAvg layer (the SAC layer records its
// own kinds; see package sac).
const (
	// KindUpload: subgroup leader → FedAvg leader (SAC-aggregated model).
	KindUpload = "fedavg/upload"
	// KindDownload: FedAvg leader → subgroup leaders (global model).
	KindDownload = "fedavg/download"
	// KindBroadcast: subgroup leader → subgroup followers (global model).
	KindBroadcast = "fedavg/broadcast"
)

// Config describes the two-layer topology.
type Config struct {
	// Sizes lists the subgroup sizes (n per subgroup). Use SplitPeers to
	// derive them the way the paper does.
	Sizes []int
	// K is the SAC reconstruction threshold per subgroup; 0 means
	// n-out-of-n for that subgroup. A single-element slice applies to
	// every subgroup (clamped to the subgroup size).
	K []int
	// Fraction is the paper's p: the fraction of subgroups whose models
	// the FedAvg leader waits for; 0 means 1.0.
	Fraction float64
	// Divider selects the secret-sharing scheme (nil: paper's Alg. 1).
	Divider secretshare.Divider
	// Parallel fans the independent subgroup SACs out across goroutines
	// (deterministic per-subgroup rng streams; shared thread-safe
	// traffic counter). Purely a wall-clock optimization: results and
	// byte counts are unaffected.
	Parallel bool
	// Aggregator selects the upper-layer combination rule (nil: FedAvg).
	// The paper notes the system is agnostic to this choice; robust
	// rules (fl.CoordinateMedian, fl.TrimmedMean) resist poisoned
	// subgroup models. Ignored when SecureUpper is set (SAC computes a
	// weighted average by construction).
	Aggregator fl.Aggregator
	// Guard, when non-nil, arms the robust-aggregation defences inside
	// every subgroup SAC (share-range exclusion, cross-checked subtotal
	// combination, leader-result audit — see sac.Guard). Subgroups whose
	// leader is convicted of equivocation by the audit are dropped from
	// the round like failed subgroups.
	Guard *sac.Guard
	// SecureUpper replaces the plain FedAvg exchange in the upper layer
	// with another SAC among the participating subgroup leaders — the
	// stronger-privacy variant the paper suggests in Sec. IV-D ("in case
	// where stronger privacy guarantees are needed, SAC could be
	// employed in the higher layer"). The upper-layer cost rises from
	// 2(m−1)·|w| to (m²−1)+(m−1) = (m²+m−2)·|w|.
	SecureUpper bool
	// Telemetry, when non-nil, receives round/* lifecycle metrics and is
	// threaded into every subgroup SAC and mesh. In Parallel mode the
	// counters stay exact (atomic and commutative) but trace-event order
	// across subgroups follows goroutine scheduling; deterministic
	// snapshots therefore require serial mode.
	Telemetry *telemetry.Registry
	// Compression, when enabled, compresses the FedAvg-layer model-delta
	// traffic — uploads (subgroup leader → FedAvg leader), downloads and
	// broadcasts — with the given scheme. Those messages are charged
	// their encoded block size instead of 8·dim, and the models that
	// cross the wire are replaced by their lossy reconstructions: the
	// FedAvg leader aggregates decoded uploads, and every peer (leader
	// included) resumes from the decoded global model, so the whole
	// fleet stays in lockstep. SAC share/subtotal traffic is never
	// compressed (shares must reconstruct exactly), and under
	// SecureUpper the uploads travel as SAC shares, so only the
	// distribution legs compress. The zero value is off and reproduces
	// byte-identical traffic and training curves.
	Compression compress.Config
}

// SplitPeers divides N peers into m subgroups as the paper does: N/m
// each, with the N mod m remainder distributed as evenly as possible
// (Fig. 13 caption).
func SplitPeers(n, m int) ([]int, error) {
	if n < 1 || m < 1 || m > n {
		return nil, fmt.Errorf("core: cannot split %d peers into %d subgroups", n, m)
	}
	sizes := make([]int, m)
	base, rem := n/m, n%m
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	return sizes, nil
}

func (c *Config) validate() error {
	if len(c.Sizes) == 0 {
		return fmt.Errorf("core: no subgroups")
	}
	for _, s := range c.Sizes {
		if s < 1 {
			return fmt.Errorf("core: subgroup size %d", s)
		}
	}
	if len(c.K) > 1 && len(c.K) != len(c.Sizes) {
		return fmt.Errorf("core: %d thresholds for %d subgroups", len(c.K), len(c.Sizes))
	}
	if c.Fraction < 0 || c.Fraction > 1 {
		return fmt.Errorf("core: fraction %v out of [0,1]", c.Fraction)
	}
	if err := c.Compression.Validate(); err != nil {
		return err
	}
	return nil
}

// thresholdFor returns the SAC threshold for subgroup g of size n.
func (c *Config) thresholdFor(g, n int) int {
	k := 0
	switch {
	case len(c.K) == 1:
		k = c.K[0]
	case len(c.K) > 1:
		k = c.K[g]
	}
	if k <= 0 || k > n {
		return n
	}
	return k
}

// NumPeers returns the total number of peers.
func (c *Config) NumPeers() int {
	n := 0
	for _, s := range c.Sizes {
		n += s
	}
	return n
}

// PeerSubgroup maps a global peer index to (subgroup, index within it).
func (c *Config) PeerSubgroup(peer int) (int, int, error) {
	off := 0
	for g, s := range c.Sizes {
		if peer < off+s {
			return g, peer - off, nil
		}
		off += s
	}
	return 0, 0, fmt.Errorf("core: peer %d out of [0,%d)", peer, off)
}

// System executes two-layer aggregations with persistent traffic
// accounting across rounds.
type System struct {
	cfg     Config
	counter *transport.Counter
	rng     *rand.Rand
	tel     sysTel
	// scratches[g] is subgroup g's SAC scratch, reused round over round.
	// One per subgroup keeps Parallel mode safe (a Scratch must not be
	// shared by concurrent aggregations); the upper layer has its own.
	scratches    []*sac.Scratch
	upperScratch *sac.Scratch
}

// sysTel holds the system's pre-resolved round-lifecycle handles (nil
// no-ops without a registry).
type sysTel struct {
	reg               *telemetry.Registry
	roundsStarted     *telemetry.Counter
	roundsCompleted   *telemetry.Counter
	subgroupsOK       *telemetry.Counter
	subgroupsExcluded *telemetry.Counter
	subgroupsDegraded *telemetry.Counter
	byzSubgroups      *telemetry.Counter
	sacFailed         *telemetry.Counter
	fedavgWeight      *telemetry.Gauge
	roundBytes        *telemetry.Histogram
}

// roundBytesBounds buckets per-round aggregation traffic in bytes.
var roundBytesBounds = []float64{1e4, 1e5, 1e6, 1e7, 1e8}

func newSysTel(reg *telemetry.Registry) sysTel {
	return sysTel{
		reg:               reg,
		roundsStarted:     reg.Counter("round/started"),
		roundsCompleted:   reg.Counter("round/completed"),
		subgroupsOK:       reg.Counter("round/subgroups_ok"),
		subgroupsExcluded: reg.Counter("round/subgroups_excluded"),
		subgroupsDegraded: reg.Counter("round/subgroups_degraded"),
		byzSubgroups:      reg.Counter("round/byzantine_subgroups"),
		sacFailed:         reg.Counter("round/sac_failed"),
		fedavgWeight:      reg.Gauge("round/fedavg_weight_total"),
		roundBytes:        reg.Histogram("round/bytes", roundBytesBounds),
	}
}

// NewSystem creates a two-layer aggregation system. rng drives share
// randomness and slow-subgroup selection; nil seeds a default.
func NewSystem(cfg Config, rng *rand.Rand) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	scratches := make([]*sac.Scratch, len(cfg.Sizes))
	for g := range scratches {
		scratches[g] = &sac.Scratch{}
	}
	return &System{
		cfg: cfg, counter: transport.NewCounter(), rng: rng, tel: newSysTel(cfg.Telemetry),
		scratches: scratches, upperScratch: &sac.Scratch{},
	}, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Reconfigure applies a membership change between rounds: the subgroup
// sizes (and per-subgroup SAC thresholds, same semantics as Config.K)
// are replaced and the per-subgroup scratch pool is resized to match.
// The continuous-churn control plane calls this at a round boundary
// with sizes derived from the replicated peer directory — secretshare's
// k-of-n geometry is recomputed per round from directory state, never
// mid-round. The traffic counter and telemetry persist across the
// change (they account the deployment, not one membership epoch), as
// does every other configuration field. A rejected configuration leaves
// the system untouched.
func (s *System) Reconfigure(sizes, k []int) error {
	next := s.cfg
	next.Sizes = append([]int(nil), sizes...)
	next.K = append([]int(nil), k...)
	if err := next.validate(); err != nil {
		return err
	}
	scratches := make([]*sac.Scratch, len(next.Sizes))
	for g := range scratches {
		if g < len(s.scratches) {
			scratches[g] = s.scratches[g] // keep warmed buffers where possible
		} else {
			scratches[g] = &sac.Scratch{}
		}
	}
	s.cfg = next
	s.scratches = scratches
	return nil
}

// Counter exposes the cumulative traffic counter.
func (s *System) Counter() *transport.Counter { return s.counter }

// RoundResult reports one aggregation round.
type RoundResult struct {
	// Global is the new global model (FedAvg over participating
	// subgroups' SAC averages).
	Global []float64
	// SubgroupAvgs holds each subgroup's SAC average (nil for subgroups
	// whose SAC failed).
	SubgroupAvgs [][]float64
	// Participated lists subgroup indices included in the FedAvg
	// aggregation (slow or failed subgroups are excluded).
	Participated []int
	// Degraded echoes the subgroups skipped because they had lost Raft
	// quorum when the round ran (RoundSpec.Degraded).
	Degraded []int
	// ByzantineExcluded lists subgroups dropped because the SAC leader
	// audit convicted their leader of equivocation.
	ByzantineExcluded []int
	// ExcludedPeers maps subgroup → contributors (local indices) the
	// share-range guard excluded inside that subgroup's SAC.
	ExcludedPeers map[int][]int
	// Bytes is the traffic of this round only.
	Bytes int64
	// GlobalBound, set only when Config.Compression is enabled, is the
	// error accounting of the compressed global-model distribution:
	// every peer's copy of Global differs from the exact FedAvg result
	// by at most GlobalBound.MaxCoordErr per coordinate.
	GlobalBound *compress.Bound
}

// ErrNoSubgroups is returned when no subgroup produced an aggregate.
var ErrNoSubgroups = errors.New("core: no subgroup completed SAC")

// RoundSpec carries the per-round parameters of an aggregation. The zero
// value is valid: uniform weighting, no crashes, leader 0 in every
// subgroup, FedAvg leader from the first participating subgroup.
type RoundSpec struct {
	// SampleCounts[i] is peer i's n_k for FedAvg weighting (nil: uniform).
	SampleCounts []float64
	// Crash schedules SAC crash plans per subgroup index.
	Crash map[int]sac.CrashPlan
	// Leaders[g] is the index (within subgroup g) of its current leader,
	// as elected by the subgroup's Raft group. Nil means index 0.
	Leaders []int
	// Adversary schedules Byzantine behaviors per subgroup index
	// (peer indices local to the subgroup), parallel to Crash.
	Adversary map[int]sac.AdversaryPlan
	// FedLeader is the subgroup whose leader currently leads the FedAvg
	// layer; −1 (or a non-participating subgroup) falls back to the
	// first participating subgroup.
	FedLeader int
	// Degraded lists subgroups that lost Raft quorum mid-round (as
	// reported by the health layer, internal/cluster). The FedAvg leader
	// records the degradation and proceeds without them under the
	// fraction-p semantics of Sec. VI-A3 instead of stalling: no SAC is
	// attempted there, their leaders are not validated (a quorumless
	// subgroup may have none), and no distribution bytes are charged
	// toward them.
	Degraded []int
}

// Aggregate runs Alg. 3 once with default round parameters. models[i] is
// peer i's flat weight vector (global peer indexing per Config.Sizes).
func (s *System) Aggregate(models [][]float64, sampleCounts []float64, crash map[int]sac.CrashPlan) (*RoundResult, error) {
	return s.AggregateRound(models, RoundSpec{SampleCounts: sampleCounts, Crash: crash, FedLeader: -1})
}

// AggregateRound runs Alg. 3 once with explicit round parameters —
// typically the leader assignments tracked by the two-layer Raft
// (internal/cluster).
func (s *System) AggregateRound(models [][]float64, spec RoundSpec) (*RoundResult, error) {
	sampleCounts := spec.SampleCounts
	crash := spec.Crash
	n := s.cfg.NumPeers()
	if len(models) != n {
		return nil, fmt.Errorf("core: %d models for %d peers", len(models), n)
	}
	if sampleCounts != nil && len(sampleCounts) != n {
		return nil, fmt.Errorf("core: %d sample counts for %d peers", len(sampleCounts), n)
	}
	m := len(s.cfg.Sizes)
	if spec.Leaders != nil && len(spec.Leaders) != m {
		return nil, fmt.Errorf("core: %d leaders for %d subgroups", len(spec.Leaders), m)
	}
	degraded := make(map[int]bool, len(spec.Degraded))
	dim := len(models[0])
	before := s.counter.TotalBytes()
	s.tel.roundsStarted.Inc()
	res := &RoundResult{SubgroupAvgs: make([][]float64, m)}
	for _, g := range spec.Degraded {
		if g < 0 || g >= m {
			return nil, fmt.Errorf("core: degraded subgroup %d out of [0,%d)", g, m)
		}
		if !degraded[g] {
			degraded[g] = true
			res.Degraded = append(res.Degraded, g)
		}
	}
	subCounts := make([]float64, m)

	// Validate leaders and precompute subgroup offsets before fanning out.
	// Degraded subgroups skip leader validation: a subgroup without
	// quorum may legitimately have no leader at all.
	offsets := make([]int, m)
	leaders := make([]int, m)
	off := 0
	for g, size := range s.cfg.Sizes {
		offsets[g] = off
		if spec.Leaders != nil && !degraded[g] {
			leaders[g] = spec.Leaders[g]
			if leaders[g] < 0 || leaders[g] >= size {
				return nil, fmt.Errorf("core: subgroup %d leader %d out of [0,%d)", g, leaders[g], size)
			}
		}
		off += size
	}
	// Subgroup SACs are independent; with Parallel they fan out across
	// goroutines (each with its own rng stream drawn deterministically
	// from the system rng), sharing the thread-safe traffic counter.
	seeds := make([]int64, m)
	for g := range seeds {
		seeds[g] = s.rng.Int63()
	}
	sacResults := make([]*sac.Result, m)
	runSubgroup := func(g int, rng *rand.Rand) {
		if degraded[g] {
			return // no quorum: the round proceeds without this subgroup
		}
		size := s.cfg.Sizes[g]
		mesh := transport.NewMesh(size, s.counter)
		mesh.SetTelemetry(s.cfg.Telemetry)
		cfg := sac.Config{
			N: size, K: s.cfg.thresholdFor(g, size), Leader: leaders[g], Mode: sac.ModeLeader,
			Divider: s.cfg.Divider, Rng: rng, Telemetry: s.cfg.Telemetry,
			Scratch:   s.scratches[g],
			Adversary: spec.Adversary[g], Guard: s.cfg.Guard,
		}
		r, err := sac.Run(mesh, cfg, models[offsets[g]:offsets[g]+size], crash[g])
		if err == nil {
			sacResults[g] = r
		} else {
			s.tel.sacFailed.Inc()
		}
	}
	if s.cfg.Parallel {
		var wg sync.WaitGroup
		for g := 0; g < m; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				runSubgroup(g, rand.New(rand.NewSource(seeds[g])))
			}(g)
		}
		wg.Wait()
	} else {
		for g := 0; g < m; g++ {
			runSubgroup(g, rand.New(rand.NewSource(seeds[g])))
		}
	}
	var okSubs []int
	for g, r := range sacResults {
		if r == nil {
			continue
		}
		if len(r.Excluded) > 0 {
			if res.ExcludedPeers == nil {
				res.ExcludedPeers = make(map[int][]int)
			}
			res.ExcludedPeers[g] = r.Excluded
		}
		if r.LeaderAccused {
			// A convicted equivocator cannot be trusted with the subgroup's
			// model; the round proceeds without the subgroup (the cluster
			// layer re-elects before the next round).
			res.ByzantineExcluded = append(res.ByzantineExcluded, g)
			s.tel.byzSubgroups.Inc()
			s.tel.reg.Trace("round/byzantine_excluded", 0, g)
			continue
		}
		res.SubgroupAvgs[g] = r.Avg
		for _, c := range r.Contributors {
			if sampleCounts != nil {
				subCounts[g] += sampleCounts[offsets[g]+c]
			} else {
				subCounts[g]++
			}
		}
		okSubs = append(okSubs, g)
	}
	if len(okSubs) == 0 {
		return nil, ErrNoSubgroups
	}
	s.tel.subgroupsOK.Add(int64(len(okSubs)))
	if len(res.Degraded) > 0 {
		// Degraded-round event: the FedAvg leader records which subgroups
		// were dropped for lost quorum before proceeding under fraction p.
		s.tel.subgroupsDegraded.Add(int64(len(res.Degraded)))
		for _, g := range res.Degraded {
			s.tel.reg.Trace("round/degraded", 0, g)
		}
	}

	// Fraction p (slow subgroups): the FedAvg leader proceeds with a
	// random subset of the successful subgroups.
	frac := s.cfg.Fraction
	if frac == 0 {
		frac = 1
	}
	want := int(frac*float64(m) + 0.5)
	if want < 1 {
		want = 1
	}
	participate := okSubs
	if want < len(okSubs) {
		perm := s.rng.Perm(len(okSubs))
		participate = make([]int, 0, want)
		for _, i := range perm[:want] {
			participate = append(participate, okSubs[i])
		}
	}
	res.Participated = participate
	if excluded := len(okSubs) - len(participate); excluded > 0 {
		s.tel.subgroupsExcluded.Add(int64(excluded))
	}

	// FedAvg layer: participating leaders upload their SAC averages to
	// the FedAvg leader (the Raft-elected one when provided, otherwise
	// the first participating subgroup's leader).
	fedLeader := participate[0]
	if spec.FedLeader >= 0 {
		for _, g := range participate {
			if g == spec.FedLeader {
				fedLeader = g
			}
		}
	}
	// One FedAvg-layer message costs 8·dim bytes uncompressed, or the
	// encoded block size under Config.Compression (the closed form
	// costmodel.DistributionBytes restates the totals).
	msgBytes := int64(8 * dim)
	if s.cfg.Compression.Enabled() {
		msgBytes = s.cfg.Compression.MessageBytes(dim)
	}
	var global []float64
	var err error
	if s.cfg.SecureUpper {
		global, err = s.secureUpperAverage(res, participate, subCounts, dim)
	} else {
		var fedModels [][]float64
		var fedCounts []float64
		for _, g := range participate {
			model := res.SubgroupAvgs[g]
			if g != fedLeader {
				if s.cfg.Compression.Enabled() {
					// The upload crosses the wire compressed; the FedAvg
					// leader aggregates what it can reconstruct. The
					// leader's own model never leaves the process.
					d, cerr := s.cfg.Compression.Compress(model)
					if cerr != nil {
						return nil, cerr
					}
					model = d.Dense(nil)
				}
				s.counter.Record(KindUpload, msgBytes)
			}
			fedModels = append(fedModels, model)
			fedCounts = append(fedCounts, subCounts[g])
		}
		agg := s.cfg.Aggregator
		if agg == nil {
			agg = fl.FedAvg{}
		}
		global, err = agg.Aggregate(fedModels, fedCounts)
	}
	if err != nil {
		return nil, err
	}
	if s.cfg.Compression.Enabled() {
		// The global model is encoded once and every distribution leg
		// ships the same block, so all peers — the FedAvg leader included,
		// to keep the fleet in lockstep — resume from the decoded copy.
		d, cerr := s.cfg.Compression.Compress(global)
		if cerr != nil {
			return nil, cerr
		}
		global = d.Dense(global[:0])
		b := d.Bound
		res.GlobalBound = &b
	}
	res.Global = global

	// Distribute: FedAvg leader → every other subgroup leader (slow
	// subgroups receive the global model too — every peer resumes from
	// it), then each subgroup leader → its followers. Degraded subgroups
	// get nothing: with quorum lost there is no leader to receive the
	// model; they catch up from the next round's distribution.
	for g, size := range s.cfg.Sizes {
		if degraded[g] {
			continue
		}
		if g != fedLeader {
			s.counter.Record(KindDownload, msgBytes)
		}
		for i := 1; i < size; i++ {
			s.counter.Record(KindBroadcast, msgBytes)
		}
	}

	res.Bytes = s.counter.TotalBytes() - before
	weightTotal := 0.0
	for _, g := range participate {
		weightTotal += subCounts[g]
	}
	s.tel.fedavgWeight.Set(weightTotal)
	s.tel.roundBytes.Observe(float64(res.Bytes))
	s.tel.roundsCompleted.Inc()
	s.tel.reg.Trace("round/aggregate", uint64(fedLeader), fedLeader,
		telemetry.F("subgroups_ok", int64(len(okSubs))),
		telemetry.F("participated", int64(len(participate))),
		telemetry.F("bytes", res.Bytes))
	return res, nil
}

// secureUpperAverage aggregates the participating subgroup leaders'
// models with SAC instead of plain FedAvg (Sec. IV-D's stronger-privacy
// variant). Sample-count weighting stays exact: each leader enters
// count_g·avg_g into the SAC, and the sum is divided by the total count
// (the counts themselves are topology metadata, exchanged in the clear
// in Alg. 3 as well).
func (s *System) secureUpperAverage(res *RoundResult, participate []int, subCounts []float64, dim int) ([]float64, error) {
	scaled := make([][]float64, len(participate))
	total := 0.0
	for i, g := range participate {
		v := make([]float64, dim)
		for j, x := range res.SubgroupAvgs[g] {
			v[j] = x * subCounts[g]
		}
		scaled[i] = v
		total += subCounts[g]
	}
	if total == 0 {
		return nil, fmt.Errorf("core: secure upper layer: zero total sample count")
	}
	if len(participate) == 1 {
		// Single participant: nothing to hide, nothing to exchange.
		out := make([]float64, dim)
		for j, x := range scaled[0] {
			out[j] = x / total
		}
		return out, nil
	}
	mesh := transport.NewMesh(len(participate), s.counter)
	mesh.SetTelemetry(s.cfg.Telemetry)
	r, err := sac.Run(mesh, sac.Config{
		N: len(participate), K: len(participate), Leader: 0, Mode: sac.ModeLeader,
		Divider: s.cfg.Divider, Rng: s.rng, Telemetry: s.cfg.Telemetry,
		Scratch: s.upperScratch,
	}, scaled, nil)
	if err != nil {
		return nil, fmt.Errorf("core: secure upper layer: %w", err)
	}
	out := make([]float64, dim)
	f := float64(len(r.Contributors)) / total
	for j, x := range r.Avg {
		out[j] = x * f
	}
	return out, nil
}

// BaselineAggregate runs the original one-layer SAC (Alg. 2, broadcast
// mode) over all peers, for comparison. Traffic lands on the same
// counter.
func (s *System) BaselineAggregate(models [][]float64) (*RoundResult, error) {
	n := len(models)
	if n == 0 {
		return nil, fmt.Errorf("core: no models")
	}
	before := s.counter.TotalBytes()
	mesh := transport.NewMesh(n, s.counter)
	mesh.SetTelemetry(s.cfg.Telemetry)
	r, err := sac.Run(mesh, sac.Config{N: n, K: n, Mode: sac.ModeBroadcast, Divider: s.cfg.Divider, Rng: s.rng, Telemetry: s.cfg.Telemetry}, models, nil)
	if err != nil {
		return nil, err
	}
	return &RoundResult{
		Global:       r.Avg,
		Participated: []int{0},
		Bytes:        s.counter.TotalBytes() - before,
	}, nil
}
