package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// The scale ladder: every tier must complete a full X-layer aggregation
// with measured bytes exactly equal to Eq. 10 and a global model that is
// the true mean. Short mode caps to the 1k tier so -race CI stays fast;
// the full run covers 118096 peers in one test.
func TestMultiLayerScaleTiers(t *testing.T) {
	for _, tier := range costmodel.ScaleTiers() {
		tier := tier
		t.Run(tier.Name, func(t *testing.T) {
			if testing.Short() && tier.Peers > 2000 {
				t.Skipf("short mode: skipping %d-peer tier", tier.Peers)
			}
			dim := 8
			if tier.Peers > 50000 {
				dim = 4
			}
			topo, err := BuildMultiLayerTopology(tier.Degree, tier.Layers)
			if err != nil {
				t.Fatal(err)
			}
			if int64(topo.N) != tier.Peers {
				t.Fatalf("topology has %d peers, tier says %d", topo.N, tier.Peers)
			}
			r := rand.New(rand.NewSource(42))
			models := randModels(r, topo.N, dim)
			ms := &MultiLayerScratch{}
			res, err := AggregateMultiLayerOpts(topo, models, nil,
				rand.New(rand.NewSource(7)), nil, MultiLayerOptions{Workers: 4, Scratch: ms})
			if err != nil {
				t.Fatal(err)
			}
			units, err := costmodel.MultiLayerUnits(tier.Degree, tier.Layers)
			if err != nil {
				t.Fatal(err)
			}
			if want := units * 8 * int64(dim); res.Bytes != want {
				t.Fatalf("tier %s: measured %d bytes, Eq. 10 says %d", tier.Name, res.Bytes, want)
			}
			// Share-split/reconstruct error accumulates over ~N additions;
			// scale the tolerance with the tree size.
			tol := 1e-8 * math.Sqrt(float64(topo.N))
			if d := maxAbsDiff(res.Global, mean(models)); d > tol {
				t.Fatalf("tier %s: global off true mean by %v (tol %v)", tier.Name, d, tol)
			}
		})
	}
}

// Parallel subgroup scheduling must be bit-identical to serial at any
// worker count: per-subgroup derived RNG streams make each SAC's
// randomness a function of the topology position only.
func TestMultiLayerParallelBitIdentical(t *testing.T) {
	topo, err := BuildMultiLayerTopology(4, 5) // N = 484
	if err != nil {
		t.Fatal(err)
	}
	dim := 32
	models := randModels(rand.New(rand.NewSource(9)), topo.N, dim)

	run := func(budget, workers int) *MultiLayerResult {
		old := tensor.Parallelism()
		tensor.SetParallelism(budget)
		defer tensor.SetParallelism(old)
		res, err := AggregateMultiLayerOpts(topo, models, nil,
			rand.New(rand.NewSource(5)), nil,
			MultiLayerOptions{Workers: workers, Scratch: &MultiLayerScratch{}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	serial := run(1, 1)
	for _, w := range []int{2, 4, 8} {
		par := run(w, w)
		if par.Bytes != serial.Bytes || par.Aggregations != serial.Aggregations {
			t.Fatalf("workers=%d: bytes/aggs %d/%d, serial %d/%d",
				w, par.Bytes, par.Aggregations, serial.Bytes, serial.Aggregations)
		}
		for j := range serial.Global {
			if math.Float64bits(par.Global[j]) != math.Float64bits(serial.Global[j]) {
				t.Fatalf("workers=%d: global[%d] = %x, serial %x",
					w, j, math.Float64bits(par.Global[j]), math.Float64bits(serial.Global[j]))
			}
		}
	}
}

// The engine borrows the caller's model slices: after an aggregation
// every input vector must be bit-for-bit untouched.
func TestMultiLayerBorrowsModels(t *testing.T) {
	topo, err := BuildMultiLayerTopology(3, 3) // N = 21
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(rand.New(rand.NewSource(4)), topo.N, 16)
	snapshot := make([][]float64, len(models))
	for i, m := range models {
		snapshot[i] = append([]float64(nil), m...)
	}
	res, err := AggregateMultiLayerOpts(topo, models, nil,
		rand.New(rand.NewSource(6)), nil, MultiLayerOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range models {
		for j := range models[i] {
			if math.Float64bits(models[i][j]) != math.Float64bits(snapshot[i][j]) {
				t.Fatalf("model %d weight %d mutated: %v -> %v", i, j, snapshot[i][j], models[i][j])
			}
		}
	}
	for i := range models {
		if &res.Global[0] == &models[i][0] {
			t.Fatalf("global aliases input model %d", i)
		}
	}
}

// One MultiLayerScratch must serve aggregations of different shapes in
// any order and still produce exactly what fresh scratch produces.
func TestMultiLayerScratchReuseAcrossShapes(t *testing.T) {
	shapes := [][2]int{{3, 2}, {4, 3}, {3, 2}, {5, 2}}
	shared := &MultiLayerScratch{}
	for round, nx := range shapes {
		topo, err := BuildMultiLayerTopology(nx[0], nx[1])
		if err != nil {
			t.Fatal(err)
		}
		models := randModels(rand.New(rand.NewSource(int64(100+round))), topo.N, 24)
		seed := int64(200 + round)
		reused, err := AggregateMultiLayerOpts(topo, models, nil,
			rand.New(rand.NewSource(seed)), nil, MultiLayerOptions{Workers: 2, Scratch: shared})
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := AggregateMultiLayerOpts(topo, models, nil,
			rand.New(rand.NewSource(seed)), nil, MultiLayerOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if reused.Bytes != fresh.Bytes {
			t.Fatalf("round %d: bytes %d with reuse, %d fresh", round, reused.Bytes, fresh.Bytes)
		}
		for j := range fresh.Global {
			if math.Float64bits(reused.Global[j]) != math.Float64bits(fresh.Global[j]) {
				t.Fatalf("round %d: global[%d] differs under scratch reuse", round, j)
			}
		}
	}
}

// The serial entry point must agree with the options form at its
// defaults, so existing callers see the same results.
func TestMultiLayerOptsDefaultsMatchPlain(t *testing.T) {
	topo, err := BuildMultiLayerTopology(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	models := randModels(rand.New(rand.NewSource(8)), topo.N, 12)
	a, err := AggregateMultiLayer(topo, models, nil, rand.New(rand.NewSource(3)), transport.NewCounter())
	if err != nil {
		t.Fatal(err)
	}
	b, err := AggregateMultiLayerOpts(topo, models, nil, rand.New(rand.NewSource(3)),
		transport.NewCounter(), MultiLayerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Bytes != b.Bytes || a.Aggregations != b.Aggregations {
		t.Fatalf("plain %d/%d, opts %d/%d", a.Bytes, a.Aggregations, b.Bytes, b.Aggregations)
	}
	for j := range a.Global {
		if math.Float64bits(a.Global[j]) != math.Float64bits(b.Global[j]) {
			t.Fatalf("global[%d] differs between entry points", j)
		}
	}
}
