package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fl"
	"repro/internal/sac"
)

// byzTestModels draws coordinates with |w[d]| ∈ [1, w] so poison-scale
// forgeries are provably out of range under ShareBound = w.
func byzTestModels(r *rand.Rand, n, dim int, w float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		m := make([]float64, dim)
		for j := range m {
			sign := 1.0
			if r.Intn(2) == 1 {
				sign = -1
			}
			m[j] = sign * (1 + r.Float64()*(w-1))
		}
		out[i] = m
	}
	return out
}

func plainMean(models [][]float64) []float64 {
	avg := make([]float64, len(models[0]))
	for _, m := range models {
		for d, v := range m {
			avg[d] += v
		}
	}
	for d := range avg {
		avg[d] /= float64(len(models))
	}
	return avg
}

func linfDist(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestRobustRoundSurvivesWherePlainMeanBreaks is the sharpness contrast
// at the system level: the same adversary plan against the same models
// keeps the guarded global within tolerance of the clean baseline while
// the unguarded run is driven arbitrarily far away.
func TestRobustRoundSurvivesWherePlainMeanBreaks(t *testing.T) {
	const (
		m, n, k, dim = 2, 5, 3, 4
		w            = 10.0
		bound        = 3 * w
	)
	sizes := []int{n, n}
	models := byzTestModels(rand.New(rand.NewSource(21)), m*n, dim, w)
	clean := plainMean(models)
	// Subgroup 0 inflates subtotal copies, subgroup 1 forges scaled
	// shares; leaders stay honest.
	plans := map[int]sac.AdversaryPlan{
		0: {2: sac.ByzInflateSubtotal},
		1: {4: sac.ByzPoisonScale},
	}
	spec := RoundSpec{Leaders: []int{0, 0}, FedLeader: -1, Adversary: plans}

	robustSys, err := NewSystem(Config{
		Sizes: sizes, K: []int{k},
		Guard:      &sac.Guard{ShareBound: w, CrossCheck: true},
		Aggregator: fl.CoordinateMedian{},
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	robust, err := robustSys.AggregateRound(models, spec)
	if err != nil {
		t.Fatalf("robust round: %v", err)
	}
	if d := linfDist(robust.Global, clean); d > bound {
		t.Fatalf("robust global deviates %g > %g from clean baseline", d, bound)
	}
	if got := robust.ExcludedPeers[1]; len(got) != 1 || got[0] != 4 {
		t.Fatalf("poison-scale peer not excluded: ExcludedPeers = %v", robust.ExcludedPeers)
	}
	if len(robust.ByzantineExcluded) != 0 {
		t.Fatalf("honest leaders, yet subgroups accused: %v", robust.ByzantineExcluded)
	}

	plainSys, err := NewSystem(Config{Sizes: sizes, K: []int{k}}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plainSys.AggregateRound(models, spec)
	if err != nil {
		t.Fatalf("plain round: %v", err)
	}
	if d := linfDist(plain.Global, clean); d <= bound {
		t.Fatalf("plain mean absorbed the attack (deviation %g ≤ %g) — the robust checks would be vacuous", d, bound)
	}
}

// TestEquivocatingLeaderDropsItsSubgroup checks the system-level
// consequence of a convicted leader: the subgroup's (tainted) result is
// withheld from the upper layer and reported in ByzantineExcluded.
func TestEquivocatingLeaderDropsItsSubgroup(t *testing.T) {
	const n, k, dim, w = 5, 3, 3, 10.0
	sizes := []int{n, n, n}
	models := byzTestModels(rand.New(rand.NewSource(22)), 3*n, dim, w)
	plans := map[int]sac.AdversaryPlan{1: {2: sac.ByzEquivocate}}
	spec := RoundSpec{Leaders: []int{0, 2, 0}, FedLeader: -1, Adversary: plans}

	sys, err := NewSystem(Config{
		Sizes: sizes, K: []int{k},
		Guard:      &sac.Guard{ShareBound: w, CrossCheck: true},
		Aggregator: fl.CoordinateMedian{},
	}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.AggregateRound(models, spec)
	if err != nil {
		t.Fatalf("round with equivocating leader: %v", err)
	}
	if len(res.ByzantineExcluded) != 1 || res.ByzantineExcluded[0] != 1 {
		t.Fatalf("ByzantineExcluded = %v, want [1]", res.ByzantineExcluded)
	}
	// The surviving subgroups are honest, so the global equals the mean
	// over their peers' models alone.
	honest := plainMean(append(append([][]float64{}, models[:n]...), models[2*n:]...))
	if d := linfDist(res.Global, honest); d > 1e-9 {
		t.Fatalf("global off the surviving subgroups' mean by %g", d)
	}
}

// TestRobustRoundDeterministic pins seed-replayability through the full
// core stack with adversaries armed.
func TestRobustRoundDeterministic(t *testing.T) {
	run := func() *RoundResult {
		models := byzTestModels(rand.New(rand.NewSource(23)), 8, 3, 10)
		sys, err := NewSystem(Config{
			Sizes: []int{4, 4}, K: []int{2},
			Guard:      &sac.Guard{ShareBound: 10, CrossCheck: true},
			Aggregator: fl.CoordinateMedian{},
		}, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.AggregateRound(models, RoundSpec{
			Leaders: []int{1, 1}, FedLeader: -1,
			Adversary: map[int]sac.AdversaryPlan{0: {0: sac.ByzCorruptShares}, 1: {3: sac.ByzZeroSubtotal}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if linfDist(a.Global, b.Global) != 0 {
		t.Fatalf("same seed diverged: %v vs %v", a.Global, b.Global)
	}
}
