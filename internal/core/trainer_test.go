package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/nn"
)

func tinyTrainerConfig(baseline bool, sizes []int, dist dataset.Distribution, seed int64) TrainerConfig {
	total := 0
	for _, s := range sizes {
		total += s
	}
	return TrainerConfig{
		Core:         Config{Sizes: sizes},
		Baseline:     baseline,
		Model:        MLPFactory(64, []int{16}, 4),
		Flat:         true,
		Data:         dataset.Tiny(4, total*30, 80, seed),
		Dist:         dist,
		Rounds:       8,
		EvalEvery:    2,
		LearningRate: 5e-3,
		Epochs:       1,
		BatchSize:    10,
		Seed:         seed,
	}
}

// MLPFactory adapts nn.MLP to the ModelFactory signature for tests.
func MLPFactory(in int, hidden []int, classes int) ModelFactory {
	return func(rng *rand.Rand) (*nn.Model, error) {
		return nn.MLP(in, hidden, classes, rng), nil
	}
}

func TestRunTrainingTwoLayerLearns(t *testing.T) {
	s, err := RunTraining(tinyTrainerConfig(false, []int{3, 3}, dataset.IID, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Round) != 4 {
		t.Fatalf("evals = %d, want 4", len(s.Round))
	}
	if s.FinalAcc() < 0.5 {
		t.Fatalf("final accuracy = %v", s.FinalAcc())
	}
	if s.TrainLoss[len(s.TrainLoss)-1] >= s.TrainLoss[0] {
		t.Fatalf("loss did not decrease: %v", s.TrainLoss)
	}
	if s.Bytes[len(s.Bytes)-1] <= s.Bytes[0] {
		t.Fatal("traffic must accumulate across rounds")
	}
}

func TestRunTrainingBaselineComparable(t *testing.T) {
	two, err := RunTraining(tinyTrainerConfig(false, []int{3, 3}, dataset.IID, 2))
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunTraining(tinyTrainerConfig(true, []int{6}, dataset.IID, 2))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's core claim: comparable accuracy (Fig. 6) at lower
	// cost. With identical seeds and IID data the accuracies should be
	// within a few points; traffic should favour the two-layer system
	// for these sizes... for N=6, n=3: two-layer (mn²+mn−2)=22|w| vs
	// baseline 2N(N−1)=60|w|.
	if diff := two.FinalAcc() - base.FinalAcc(); diff < -0.25 {
		t.Fatalf("two-layer accuracy %.3f far below baseline %.3f", two.FinalAcc(), base.FinalAcc())
	}
	if two.Bytes[len(two.Bytes)-1] >= base.Bytes[len(base.Bytes)-1] {
		t.Fatalf("two-layer traffic %d not below baseline %d",
			two.Bytes[len(two.Bytes)-1], base.Bytes[len(base.Bytes)-1])
	}
}

func TestRunTrainingNonIID(t *testing.T) {
	s, err := RunTraining(tinyTrainerConfig(false, []int{3, 3}, dataset.NonIID0, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Non-IID learning is harder but must still produce a usable series.
	if len(s.TestAcc) == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestRunTrainingWithCrashes(t *testing.T) {
	cfg := tinyTrainerConfig(false, []int{3, 3}, dataset.IID, 4)
	cfg.Core.K = []int{2} // fault-tolerant SAC
	cfg.CrashEvery = 2
	s, err := RunTraining(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.FinalAcc() < 0.4 {
		t.Fatalf("accuracy with dropouts = %v", s.FinalAcc())
	}
}

func TestRunTrainingFraction(t *testing.T) {
	cfg := tinyTrainerConfig(false, []int{3, 3, 3, 3}, dataset.IID, 5)
	cfg.Core.Fraction = 0.5
	s, err := RunTraining(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.FinalAcc() < 0.4 {
		t.Fatalf("accuracy at p=0.5 = %v", s.FinalAcc())
	}
}

func TestRunTrainingValidation(t *testing.T) {
	cfg := tinyTrainerConfig(false, []int{3}, dataset.IID, 6)
	cfg.Model = nil
	if _, err := RunTraining(cfg); err == nil {
		t.Fatal("want error for nil model factory")
	}
	cfg = tinyTrainerConfig(false, []int{3}, dataset.IID, 6)
	cfg.Rounds = 0
	if _, err := RunTraining(cfg); err == nil {
		t.Fatal("want error for zero rounds")
	}
}
