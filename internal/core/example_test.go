package core_test

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sac"
)

// The two-layer aggregation in a nutshell: six peers in two fault-
// tolerant subgroups produce exactly the mean of their models, at a
// fraction of the one-layer SAC's traffic.
func ExampleSystem_Aggregate() {
	sys, err := core.NewSystem(core.Config{
		Sizes: []int{3, 3}, // two subgroups of three peers
		K:     []int{2},    // 2-out-of-3: one dropout per subgroup is fine
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	models := [][]float64{
		{1}, {2}, {3}, // subgroup 0
		{4}, {5}, {6}, // subgroup 1
	}
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		panic(err)
	}
	// Eq. 5 with m=2, n=3, k=2: {(9−6+2)·6 + 2·2 − 2}·|w| = 32 × 8 bytes.
	fmt.Printf("global = %.1f (bytes moved: %d)\n", res.Global[0], res.Bytes)
	// Output: global = 3.5 (bytes moved: 256)
}

// A peer dropping out mid-protocol (the paper's Fig. 3) does not stop
// the aggregation, and its model still counts.
func ExampleSystem_Aggregate_dropout() {
	sys, err := core.NewSystem(core.Config{Sizes: []int{3}, K: []int{2}},
		rand.New(rand.NewSource(2)))
	if err != nil {
		panic(err)
	}
	models := [][]float64{{3}, {6}, {9}}
	crash := map[int]sac.CrashPlan{0: {2: sac.AfterShares}}
	res, err := sys.Aggregate(models, nil, crash)
	if err != nil {
		panic(err)
	}
	fmt.Printf("global = %.1f with %d contributors\n", res.Global[0], 3)
	// Output: global = 6.0 with 3 contributors
}

// SplitPeers divides peers the way the paper's figures do.
func ExampleSplitPeers() {
	sizes, _ := core.SplitPeers(30, 4)
	fmt.Println(sizes)
	// Output: [8 8 7 7]
}
