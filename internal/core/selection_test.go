package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestSelectClients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	all := selectClients(5, 0, rng)
	for _, s := range all {
		if !s {
			t.Fatal("fraction 0 must select everybody")
		}
	}
	all = selectClients(5, 1, rng)
	for _, s := range all {
		if !s {
			t.Fatal("fraction 1 must select everybody")
		}
	}
	half := selectClients(10, 0.5, rng)
	n := 0
	for _, s := range half {
		if s {
			n++
		}
	}
	if n != 5 {
		t.Fatalf("selected %d of 10 at fraction 0.5", n)
	}
	one := selectClients(10, 0.01, rng)
	n = 0
	for _, s := range one {
		if s {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("tiny fraction must still select one peer, got %d", n)
	}
}

func TestRunTrainingWithClientSelection(t *testing.T) {
	cfg := tinyTrainerConfig(false, []int{3, 3}, dataset.IID, 51)
	cfg.ClientFraction = 0.5
	cfg.Rounds = 12
	s, err := RunTraining(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.FinalAcc() < 0.5 {
		t.Fatalf("accuracy with 50%% participation = %v", s.FinalAcc())
	}
}

func TestRunTrainingClientFractionValidation(t *testing.T) {
	cfg := tinyTrainerConfig(false, []int{3}, dataset.IID, 52)
	cfg.ClientFraction = 1.5
	if _, err := RunTraining(cfg); err == nil {
		t.Fatal("want error for fraction > 1")
	}
}
