package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fl"
)

// A poisoned subgroup (all its peers submit a huge model) corrupts the
// FedAvg global model but not the coordinate-median one — the robustness
// knob the paper's "agnostic to the aggregation algorithm" remark allows.
func TestRobustUpperLayerResistsPoisonedSubgroup(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	models := randModels(r, 9, 4) // 3 subgroups of 3
	for i := 6; i < 9; i++ {      // subgroup 2 is poisoned
		for j := range models[i] {
			models[i][j] = 1e9
		}
	}
	run := func(agg fl.Aggregator) []float64 {
		sys, err := NewSystem(Config{Sizes: []int{3, 3, 3}, Aggregator: agg}, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Aggregate(models, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Global
	}
	avg := run(nil) // FedAvg
	med := run(fl.CoordinateMedian{})
	if math.Abs(avg[0]) < 1e7 {
		t.Fatalf("FedAvg should be dominated by the poison: %v", avg[0])
	}
	if math.Abs(med[0]) > 10 {
		t.Fatalf("median upper layer let the poison through: %v", med[0])
	}
}

func TestTrimmedMeanUpperLayer(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	models := randModels(r, 10, 4) // 5 subgroups of 2
	for j := range models[0] {
		models[0][j] = -1e6
		models[1][j] = -1e6
	}
	sys, err := NewSystem(Config{
		Sizes:      []int{2, 2, 2, 2, 2},
		Aggregator: fl.TrimmedMean{Trim: 0.2},
	}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Aggregate(models, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Global[0]) > 100 {
		t.Fatalf("trimmed mean let the poisoned subgroup through: %v", res.Global[0])
	}
}
