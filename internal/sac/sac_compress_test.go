package sac

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/transport"
)

// TestCompressionLeavesSACExact proves the opt-in compression boundary:
// with the model-delta kinds compressed on the mesh, a SAC round — whose
// share/subtotal/audit kinds are never listed — produces bit-identical
// results and byte counts to a round on an untouched mesh. Shares and
// subtotals must stay exact: lossy shares would silently corrupt the
// secure average, and the leader audit compares KindClaims/KindResult
// bit for bit.
func TestCompressionLeavesSACExact(t *testing.T) {
	const n, dim, seed = 5, 64, 11
	mkModels := func() [][]float64 {
		r := rand.New(rand.NewSource(seed + 1))
		models := make([][]float64, n)
		for i := range models {
			models[i] = make([]float64, dim)
			for j := range models[i] {
				models[i][j] = r.NormFloat64()
			}
		}
		return models
	}

	plain := transport.NewMesh(n, nil)
	refRes, err := Run(plain, Config{N: n, K: n, Leader: 0, Mode: ModeLeader, Rng: rand.New(rand.NewSource(seed))}, mkModels(), nil)
	if err != nil {
		t.Fatal(err)
	}

	comp := transport.NewMesh(n, nil)
	// Compression armed for the fedavg distribution kinds only — exactly
	// how core.System configures it. No sac/* kind is listed.
	err = comp.SetCompression(compress.Config{Scheme: compress.Quant8},
		"fedavg/upload", "fedavg/download", "fedavg/broadcast")
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := Run(comp, Config{N: n, K: n, Leader: 0, Mode: ModeLeader, Rng: rand.New(rand.NewSource(seed))}, mkModels(), nil)
	if err != nil {
		t.Fatal(err)
	}

	for j := range refRes.Avg {
		if math.Float64bits(refRes.Avg[j]) != math.Float64bits(gotRes.Avg[j]) {
			t.Fatalf("coord %d: compressed-mesh average differs: %g vs %g", j, gotRes.Avg[j], refRes.Avg[j])
		}
	}
	for _, kind := range []string{KindShare, KindSubtotal} {
		ref, got := plain.Counter().Bytes(kind), comp.Counter().Bytes(kind)
		if ref != got {
			t.Fatalf("%s bytes: %d on compressed mesh, want %d (sac traffic must stay exact)", kind, got, ref)
		}
		if ref == 0 {
			t.Fatalf("%s recorded no traffic — test is vacuous", kind)
		}
	}
	if plain.Counter().TotalBytes() != comp.Counter().TotalBytes() {
		t.Fatalf("total bytes diverge: %d vs %d", comp.Counter().TotalBytes(), plain.Counter().TotalBytes())
	}
}

// TestCompressionLeavesGuardedSACExact repeats the check with the guard
// stack (share-range guard + cross-check + leader audit) armed: the
// audit's bit-exact KindClaims/KindResult comparison must hold on a
// compression-enabled mesh.
func TestCompressionLeavesGuardedSACExact(t *testing.T) {
	const n, dim, seed = 6, 32, 23
	r := rand.New(rand.NewSource(seed + 1))
	models := make([][]float64, n)
	for i := range models {
		models[i] = make([]float64, dim)
		for j := range models[i] {
			models[i][j] = r.NormFloat64()
		}
	}
	guard := &Guard{ShareBound: 100, CrossCheck: true}

	run := func(mesh *transport.Mesh) *Result {
		t.Helper()
		res, err := Run(mesh, Config{
			N: n, K: n, Leader: 0, Mode: ModeLeader,
			Rng: rand.New(rand.NewSource(seed)), Guard: guard,
		}, models, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := transport.NewMesh(n, nil)
	ref := run(plain)

	comp := transport.NewMesh(n, nil)
	if err := comp.SetCompression(compress.Config{Scheme: compress.TopKQuant8, Frac: 0.1},
		"fedavg/upload", "fedavg/download", "fedavg/broadcast"); err != nil {
		t.Fatal(err)
	}
	got := run(comp)

	if got.LeaderAccused || got.Mismatches != ref.Mismatches || len(got.Excluded) != len(ref.Excluded) {
		t.Fatalf("guard verdicts changed under compression: %+v vs %+v", got, ref)
	}
	for j := range ref.Avg {
		if math.Float64bits(ref.Avg[j]) != math.Float64bits(got.Avg[j]) {
			t.Fatalf("coord %d differs under guards", j)
		}
	}
	if plain.Counter().TotalBytes() != comp.Counter().TotalBytes() {
		t.Fatalf("guarded round bytes diverge: %d vs %d", comp.Counter().TotalBytes(), plain.Counter().TotalBytes())
	}
}
