// Package sac implements Secure Average Computation: the baseline
// n-out-of-n protocol (Alg. 2 of the paper) and the fault-tolerant
// k-out-of-n protocol with replicated shares (Alg. 4).
//
// The engine is round-synchronous: the protocol advances through explicit
// phases (share exchange → subtotal computation → subtotal exchange →
// recovery → average) and peers may crash at phase boundaries, which is
// exactly the failure model of the paper's Fig. 3 — a peer that "drops out
// during aggregation" has sent its shares but not its subtotal.
//
// Traffic flows through a transport.Mesh, so every byte is accounted and
// the measured cost can be checked against the paper's closed forms:
//
//	broadcast n-out-of-n (Alg. 2):   2N(N−1)·|w|
//	leader   n-out-of-n (Sec. VII-A): (N²−1)·|w|
//	leader   k-out-of-n (Sec. VII-B): {N(N−1)(N−K+1)+(K−1)}·|w|
package sac

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/secretshare"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Message kinds recorded on the traffic counter.
const (
	KindShare       = "sac/share"
	KindSubtotal    = "sac/subtotal"
	KindRecoveryReq = "sac/recovery-req"
	KindRecovery    = "sac/recovery"
	// KindAccuse is a range-guard accusation broadcast (metadata-sized).
	KindAccuse = "sac/accuse"
	// KindClaims carries the leader's claimed per-index subtotals to an
	// audit verifier (n·|w| floats).
	KindClaims = "sac/claims"
	// KindResult carries the leader's announced result to one peer (|w|).
	KindResult = "sac/result"
	// KindAudit is a verifier's digest echo (metadata-sized).
	KindAudit = "sac/audit"
)

// Mode selects how subtotals are exchanged.
type Mode int

const (
	// ModeBroadcast is Alg. 2: every peer broadcasts its subtotal so every
	// peer can compute the average. Only valid for K = N.
	ModeBroadcast Mode = iota
	// ModeLeader collects subtotals at a designated leader, the form used
	// inside the two-layer system's subgroups (Sec. VII-A cost accounting).
	ModeLeader
)

// Phase identifies a point in the protocol at which a peer may crash.
type Phase int

const (
	// BeforeShares: the peer crashes before sending any share.
	BeforeShares Phase = iota
	// AfterShares: the peer crashes after distributing its shares but
	// before participating in the subtotal exchange (the paper's Fig. 3).
	AfterShares
)

// CrashPlan schedules peer crashes: peer index → phase boundary at which
// the peer fails.
type CrashPlan map[int]Phase

// Errors returned by the engine.
var (
	// ErrAborted reports that an n-out-of-n aggregation hit a crash and,
	// per Alg. 2's semantics, must be restarted with the remaining peers.
	ErrAborted = errors.New("sac: aggregation aborted by peer failure")
	// ErrInsufficientPeers reports that more than N−K peers failed, so the
	// secret average is unrecoverable.
	ErrInsufficientPeers = errors.New("sac: fewer than K peers alive")
	// ErrLeaderCrashed reports a crash of the designated leader, which is
	// handled by Raft re-election above this engine.
	ErrLeaderCrashed = errors.New("sac: leader crashed")
)

// Config parameterizes one SAC aggregation.
type Config struct {
	N      int // number of participating peers
	K      int // reconstruction threshold; K = N disables replication
	Leader int // leader peer for ModeLeader
	Mode   Mode
	// Divider selects the share-splitting scheme; nil uses the paper's
	// Alg. 1 (ScalarDivider).
	Divider secretshare.Divider
	// Rng drives share randomness; nil seeds a default source.
	Rng *rand.Rand
	// Telemetry, when non-nil, receives sac/* counters, per-phase
	// duration histograms, and one trace event per aggregation.
	Telemetry *telemetry.Registry
	// Scratch, when non-nil, lets the engine reuse share blocks,
	// subtotal vectors and receive containers across same-shaped rounds
	// instead of reallocating them (see Scratch). Results are
	// bit-identical either way; payloads observed on the mesh alias
	// scratch memory, so observers must copy what they retain.
	Scratch *Scratch
	// Adversary marks peers with Byzantine behaviors for this round
	// (nil: everyone honest). See Behavior.
	Adversary AdversaryPlan
	// Guard arms the robust-aggregation defences (nil: the paper's
	// crash-only protocol; lies go undetected). See Guard. Note that
	// with K = N a range-guard exclusion aborts the round (Alg. 2
	// semantics: a missing partition is unrecoverable).
	Guard *Guard
}

func (c *Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("sac: N = %d", c.N)
	}
	if c.K < 1 || c.K > c.N {
		return fmt.Errorf("sac: K = %d out of [1,%d]", c.K, c.N)
	}
	if c.Mode == ModeBroadcast && c.K != c.N {
		return fmt.Errorf("sac: broadcast mode requires K = N (Alg. 2 has no recovery)")
	}
	if c.Mode == ModeLeader && (c.Leader < 0 || c.Leader >= c.N) {
		return fmt.Errorf("sac: leader %d out of [0,%d)", c.Leader, c.N)
	}
	if c.Guard != nil && c.Guard.CrossCheck && c.Mode != ModeLeader {
		return fmt.Errorf("sac: cross-check guard requires leader mode")
	}
	for p, b := range c.Adversary {
		if p < 0 || p >= c.N {
			return fmt.Errorf("sac: adversary peer %d out of [0,%d)", p, c.N)
		}
		if !b.valid() {
			return fmt.Errorf("sac: unknown adversary behavior %q", b)
		}
	}
	return nil
}

// Result reports the outcome of an aggregation.
type Result struct {
	// Avg is the secure average over Contributors' models.
	Avg []float64
	// Contributors lists the peers whose models entered the average —
	// including peers that crashed after distributing shares (Fig. 3).
	Contributors []int
	// Recovered lists share indices whose subtotals were fetched from
	// replica holders because the owner crashed.
	Recovered []int
	// Excluded lists contributors removed by the range guard: their
	// shares were provably forged, so their models left the average.
	Excluded []int
	// Mismatches counts subtotal copies that disagreed with the
	// cross-checked combination beyond the guard tolerance.
	Mismatches int
	// LeaderAccused reports that the leader-result audit convicted the
	// leader of equivocation; callers must discard Avg (the engine
	// returns the honest combination, but a real deployment would
	// re-run under a new leader).
	LeaderAccused bool
}

// Run executes one SAC aggregation of models (models[i] is peer i's flat
// weight vector; all equal length) over the mesh, applying the crash plan.
// Peers already crashed on the mesh are treated as BeforeShares failures.
func Run(mesh transport.Network, cfg Config, models [][]float64, crash CrashPlan) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if mesh.N() != cfg.N {
		return nil, fmt.Errorf("sac: mesh has %d peers, config %d", mesh.N(), cfg.N)
	}
	if len(models) != cfg.N {
		return nil, fmt.Errorf("sac: %d models for %d peers", len(models), cfg.N)
	}
	dim := len(models[0])
	for i, m := range models {
		if len(m) != dim {
			return nil, fmt.Errorf("sac: model %d has %d weights, want %d", i, len(m), dim)
		}
	}
	div := cfg.Divider
	if div == nil {
		div = secretshare.ScalarDivider{}
	}
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}

	e := &engine{mesh: mesh, cfg: cfg, dim: dim, div: div, rng: rng, crash: crash, tel: newSACTel(cfg.Telemetry), sc: cfg.Scratch}
	e.sc.begin(cfg.N, dim)
	e.tel.roundsStarted.Inc()
	res, err := e.run(models)
	if err != nil {
		e.tel.roundsFailed.Inc()
		return nil, err
	}
	e.tel.roundsOK.Inc()
	e.tel.reg.Trace("sac/round", uint64(cfg.Leader), -1,
		telemetry.F("n", int64(cfg.N)),
		telemetry.F("k", int64(cfg.K)),
		telemetry.F("contributors", int64(len(res.Contributors))),
		telemetry.F("recovered", int64(len(res.Recovered))))
	return res, nil
}

// sacTel holds the engine's pre-resolved metric handles (all nil, hence
// no-ops, when no registry is configured).
type sacTel struct {
	reg                *telemetry.Registry
	roundsStarted      *telemetry.Counter
	roundsOK           *telemetry.Counter
	roundsFailed       *telemetry.Counter
	sharesSent         *telemetry.Counter
	subtotalsSent      *telemetry.Counter
	subtotalsRecovered *telemetry.Counter
	peersCrashed       *telemetry.Counter
	msgsInvalid        *telemetry.Counter
	byzShareRange      *telemetry.Counter
	byzMismatch        *telemetry.Counter
	byzEquivocation    *telemetry.Counter
	byzExcluded        *telemetry.Counter
	phaseShare         *telemetry.Histogram
	phaseSubtotal      *telemetry.Histogram
	phaseFinish        *telemetry.Histogram
}

// phaseBoundsUs buckets per-phase durations in microseconds.
var phaseBoundsUs = []float64{100, 1_000, 10_000, 100_000, 1_000_000}

func newSACTel(reg *telemetry.Registry) sacTel {
	return sacTel{
		reg:                reg,
		roundsStarted:      reg.Counter("sac/rounds_started"),
		roundsOK:           reg.Counter("sac/rounds_ok"),
		roundsFailed:       reg.Counter("sac/rounds_failed"),
		sharesSent:         reg.Counter("sac/shares_sent"),
		subtotalsSent:      reg.Counter("sac/subtotals_sent"),
		subtotalsRecovered: reg.Counter("sac/subtotals_recovered"),
		peersCrashed:       reg.Counter("sac/peers_crashed"),
		msgsInvalid:        reg.Counter("sac/msgs_invalid"),
		byzShareRange:      reg.Counter("sac/byzantine_share_range"),
		byzMismatch:        reg.Counter("sac/byzantine_subtotal_mismatch"),
		byzEquivocation:    reg.Counter("sac/byzantine_equivocation"),
		byzExcluded:        reg.Counter("sac/byzantine_excluded"),
		phaseShare:         reg.Histogram("sac/phase_share_us", phaseBoundsUs),
		phaseSubtotal:      reg.Histogram("sac/phase_subtotal_us", phaseBoundsUs),
		phaseFinish:        reg.Histogram("sac/phase_finish_us", phaseBoundsUs),
	}
}

type engine struct {
	mesh  transport.Network
	cfg   Config
	dim   int
	div   secretshare.Divider
	rng   *rand.Rand
	crash CrashPlan
	tel   sacTel
	sc    *Scratch // nil: allocate per round

	contributors []int
	// subtotals[peer][shareIdx] — computed by peers holding shareIdx.
	subtotals []map[int][]float64

	// Byzantine bookkeeping (see byzantine.go).
	excluded      []int
	mismatches    int
	leaderAccused bool
}

func (e *engine) crashAt(peer int, phase Phase) bool {
	p, ok := e.crash[peer]
	return ok && p == phase
}

// replicaSets returns the (n, k) replica assignment, served from the
// scratch cache when one is wired (scratchless rounds compute it fresh).
func (e *engine) replicaSets(n, k int) ([][]int, error) {
	if e.sc != nil {
		return e.sc.replicaSets(n, k)
	}
	sets := make([][]int, n)
	for j := 0; j < n; j++ {
		idx, err := secretshare.ReplicaIndices(j, n, k)
		if err != nil {
			return nil, err
		}
		sets[j] = idx
	}
	return sets, nil
}

func (e *engine) run(models [][]float64) (*Result, error) {
	n, k := e.cfg.N, e.cfg.K
	t0 := e.tel.reg.Now()

	// Phase 1 — share exchange (Alg. 2 lines 2–5 / Alg. 4 lines 2–10).
	// received[j][shareIdx][contributor] = share vector.
	received := e.sc.receivedMaps(n)
	// Replica assignment depends only on (n, k) — compute each
	// receiver's share indices once, not once per contributor, and with
	// a Scratch only once per shape (the cache survives across rounds).
	replicas, err := e.replicaSets(n, k)
	if err != nil {
		return nil, err
	}
	var sharesSent int64 // batched into one atomic Add below
	for i := 0; i < n; i++ {
		if !e.mesh.Alive(i) {
			continue
		}
		if e.crashAt(i, BeforeShares) {
			if err := e.mesh.Crash(i); err != nil {
				return nil, err
			}
			e.tel.peersCrashed.Inc()
			continue
		}
		// Model poisoning happens before division: the adversary shares a
		// scaled or sign-flipped update, consistently across receivers.
		shares, err := e.divide(i, attackModel(e.byz(i), models[i]), n)
		if err != nil {
			return nil, err
		}
		e.contributors = append(e.contributors, i)
		for j := 0; j < n; j++ {
			for _, s := range replicas[j] {
				if j == i {
					// Local retention — no traffic.
					e.store(received, j, s, i, shares[s])
					continue
				}
				payload := shares[s]
				if e.byz(i) == ByzCorruptShares {
					// Each receiver gets its own perturbed copy; the true
					// share stays only with the sender.
					payload = e.corruptedCopy(payload)
				}
				msg := transport.Message{From: i, To: j, Kind: KindShare, ShareIdx: s, Payload: payload}
				if err := e.mesh.Send(msg); err != nil {
					return nil, err
				}
				sharesSent++
			}
		}
	}
	if sharesSent > 0 {
		e.tel.sharesSent.Add(sharesSent)
	}
	if len(e.contributors) == 0 {
		return nil, ErrInsufficientPeers
	}

	// Deliver shares: drain each alive peer's inbox. Anything that is not
	// a well-formed share for this round — wrong kind, share index outside
	// [0,n), payload of the wrong dimension, or a stale message replayed
	// from an earlier round — is discarded: a malformed or replayed
	// message must never panic the engine or double-count a model.
	var accusations []accusation
	accusedPair := make(map[[2]int]bool)
	for j := 0; j < n; j++ {
		if !e.mesh.Alive(j) {
			continue
		}
		msgs, err := e.mesh.Drain(j)
		if err != nil {
			return nil, err
		}
		for _, m := range msgs {
			switch {
			case !e.validShare(m):
				e.tel.msgsInvalid.Inc()
			case e.shareOutOfRange(j, m):
				// Range guard: an honest share is a fraction of its model,
				// so a too-large share is provably forged. Accuse once per
				// (accuser, sender) pair; the share is not stored.
				if pair := [2]int{j, m.From}; !accusedPair[pair] {
					accusedPair[pair] = true
					accusations = append(accusations, accusation{accuser: j, accused: m.From})
				}
			default:
				e.store(received, j, m.ShareIdx, m.From, m.Payload)
			}
		}
	}
	if err := e.broadcastAccusations(accusations); err != nil {
		return nil, err
	}
	if len(e.contributors) == 0 {
		return nil, fmt.Errorf("%w: every contributor was excluded by the range guard", ErrInsufficientPeers)
	}
	t1 := e.tel.reg.Now()
	e.tel.phaseShare.Observe(float64(t1 - t0))

	// Alg. 2 semantics: with K = N any pre-share crash leaves the other
	// peers missing a partition, so the aggregation aborts.
	if k == n && len(e.contributors) < n {
		return nil, fmt.Errorf("%w: %d of %d peers sent shares", ErrAborted, len(e.contributors), n)
	}

	// Phase 2 — subtotal computation (Alg. 2 line 6 / Alg. 4 lines 11–13).
	// A peer that crashes AfterShares has distributed its shares (so its
	// model still counts) but computes/sends nothing further.
	e.subtotals = e.sc.subtotalSlice(n)
	for j := 0; j < n; j++ {
		if !e.mesh.Alive(j) {
			continue
		}
		if e.crashAt(j, AfterShares) {
			if err := e.mesh.Crash(j); err != nil {
				return nil, err
			}
			e.tel.peersCrashed.Inc()
			continue
		}
		e.subtotals[j] = e.sc.innerMap()
		for s, byContrib := range received[j] {
			sub := e.sc.subVec(e.dim)
			complete := true
			for _, c := range e.contributors {
				sh, ok := byContrib[c]
				if !ok {
					complete = false
					break
				}
				for x, v := range sh {
					sub[x] += v
				}
			}
			if complete {
				e.subtotals[j][s] = sub
			}
		}
		e.corruptSubtotals(j)
	}

	// Phase 3 — subtotal exchange.
	t2 := e.tel.reg.Now()
	e.tel.phaseSubtotal.Observe(float64(t2 - t1))
	var res *Result
	switch {
	case e.cfg.Mode == ModeBroadcast:
		res, err = e.finishBroadcast()
	case e.cfg.Guard != nil && e.cfg.Guard.CrossCheck:
		res, err = e.finishLeaderGuarded()
	default:
		res, err = e.finishLeader()
	}
	if res != nil {
		res.Excluded = e.excluded
		res.Mismatches = e.mismatches
		res.LeaderAccused = e.leaderAccused
	}
	e.tel.phaseFinish.Observe(float64(e.tel.reg.Now() - t2))
	return res, err
}

// validShare reports whether m is a well-formed share message for this
// round: right kind, in-range share index and sender, and a payload of
// the model dimension. Duplicates are tolerated upstream — store keys by
// (share index, contributor), so a replayed share overwrites rather than
// double-counts.
func (e *engine) validShare(m transport.Message) bool {
	return m.Kind == KindShare &&
		m.ShareIdx >= 0 && m.ShareIdx < e.cfg.N &&
		m.From >= 0 && m.From < e.cfg.N &&
		len(m.Payload) == e.dim
}

// validSubtotal is the analogous filter for subtotal messages.
func (e *engine) validSubtotal(m transport.Message) bool {
	return m.Kind == KindSubtotal &&
		m.ShareIdx >= 0 && m.ShareIdx < e.cfg.N &&
		m.From >= 0 && m.From < e.cfg.N &&
		len(m.Payload) == e.dim
}

func (e *engine) store(received []map[int]map[int][]float64, peer, shareIdx, contributor int, share []float64) {
	byContrib, ok := received[peer][shareIdx]
	if !ok {
		byContrib = e.sc.innerMap()
		received[peer][shareIdx] = byContrib
	}
	byContrib[contributor] = share
}

// divide splits contributor i's model into n shares — through the
// flat-block scratch when one is configured, so steady-state rounds
// reuse the same n·dim backing array per contributor.
func (e *engine) divide(i int, w []float64, n int) ([][]float64, error) {
	if e.sc == nil {
		return e.div.Divide(w, n, e.rng)
	}
	block, views := e.sc.shareScratch(i)
	shares, block, err := e.div.DivideInto(w, n, e.rng, block, views)
	if err != nil {
		return nil, err
	}
	e.sc.keepShareScratch(i, block, shares)
	return shares, nil
}

// finishBroadcast implements Alg. 2 lines 7–9: every peer broadcasts its
// own subtotal; everyone averages. Any missing subtotal aborts.
func (e *engine) finishBroadcast() (*Result, error) {
	n := e.cfg.N
	for i := 0; i < n; i++ {
		if !e.mesh.Alive(i) {
			continue
		}
		sub, ok := e.subtotals[i][i]
		if !ok {
			return nil, fmt.Errorf("%w: peer %d missing own subtotal", ErrAborted, i)
		}
		for j := 0; j < n; j++ {
			if j == i || !e.mesh.Alive(j) {
				continue
			}
			msg := transport.Message{From: i, To: j, Kind: KindSubtotal, ShareIdx: i, Payload: sub}
			if err := e.mesh.Send(msg); err != nil {
				return nil, err
			}
			e.tel.subtotalsSent.Inc()
		}
	}
	// Every alive peer must now hold all N subtotals.
	alive := e.mesh.AlivePeers()
	if len(alive) < n {
		return nil, fmt.Errorf("%w: %d of %d peers alive at subtotal exchange", ErrAborted, len(alive), n)
	}
	// Average at peer 0's view (identical everywhere): drain inboxes and sum.
	var avg []float64
	for _, j := range alive {
		msgs, err := e.mesh.Drain(j)
		if err != nil {
			return nil, err
		}
		got := e.sc.innerMap()
		got[j] = e.subtotals[j][j]
		for _, m := range msgs {
			if e.validSubtotal(m) {
				got[m.ShareIdx] = m.Payload
			} else {
				e.tel.msgsInvalid.Inc()
			}
		}
		if len(got) != n {
			return nil, fmt.Errorf("%w: peer %d holds %d of %d subtotals", ErrAborted, j, len(got), n)
		}
		a := e.average(got)
		if avg == nil {
			avg = a
		}
	}
	return &Result{Avg: avg, Contributors: e.contributors}, nil
}

// finishLeader implements Alg. 4 lines 14–20: owners send the leader the
// subtotals it lacks; crashed owners' subtotals are recovered from
// replica holders.
func (e *engine) finishLeader() (*Result, error) {
	n, k, leader := e.cfg.N, e.cfg.K, e.cfg.Leader
	if !e.mesh.Alive(leader) || e.subtotals[leader] == nil {
		return nil, ErrLeaderCrashed
	}
	have := e.sc.haveMap(n)
	for s, sub := range e.subtotals[leader] {
		have[s] = sub
	}
	// Owners i ≠ leader send ps_wt_i for the K−1 indices the leader lacks
	// (Alg. 4 lines 14–16). In the round-synchronous engine every
	// non-leader owner of a missing index sends it.
	var recovered []int
	for s := 0; s < n; s++ {
		if _, ok := have[s]; ok {
			continue
		}
		if e.mesh.Alive(s) && e.subtotals[s] != nil {
			if sub, ok := e.subtotals[s][s]; ok {
				msg := transport.Message{From: s, To: leader, Kind: KindSubtotal, ShareIdx: s, Payload: sub}
				if err := e.mesh.Send(msg); err != nil {
					return nil, err
				}
				e.tel.subtotalsSent.Inc()
				have[s] = sub
				continue
			}
		}
		// Owner is down — recover from a replica holder (lines 17–18).
		holders, err := secretshare.HoldersOf(s, n, k)
		if err != nil {
			return nil, err
		}
		found := false
		for _, h := range holders {
			if h == s || !e.mesh.Alive(h) || e.subtotals[h] == nil {
				continue
			}
			sub, ok := e.subtotals[h][s]
			if !ok {
				continue
			}
			// Request (metadata-sized) and response (|w|).
			req := transport.Message{From: leader, To: h, Kind: KindRecoveryReq, ShareIdx: s, Payload: []float64{float64(s)}}
			if err := e.mesh.Send(req); err != nil {
				return nil, err
			}
			resp := transport.Message{From: h, To: leader, Kind: KindRecovery, ShareIdx: s, Payload: sub}
			if err := e.mesh.Send(resp); err != nil {
				return nil, err
			}
			have[s] = sub
			recovered = append(recovered, s)
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("%w: no alive holder of subtotal %d", ErrInsufficientPeers, s)
		}
	}
	// Drain the leader's inbox for completeness of the mesh bookkeeping.
	if _, err := e.mesh.Drain(leader); err != nil {
		return nil, err
	}
	if len(recovered) > 0 {
		e.tel.subtotalsRecovered.Add(int64(len(recovered)))
	}
	avg := e.average(have)
	if e.byz(leader) == ByzEquivocate {
		// Without the audit the lie goes unnoticed: the leader announces
		// an offset result and nobody can tell.
		for x := range avg {
			avg[x] += EquivocateOffset
		}
	}
	return &Result{Avg: avg, Contributors: e.contributors, Recovered: recovered}, nil
}

// average sums all n subtotals and divides by the number of contributing
// models (Eq. 1–3 generalized to dropouts). Summation runs in ascending
// share-index order so results are bit-for-bit deterministic (map order
// would reorder floating-point additions).
// Avg is always freshly allocated — it is the one vector that escapes
// the round, so it must not alias reusable scratch.
func (e *engine) average(subtotals map[int][]float64) []float64 {
	keys := e.sc.sortKeys(len(subtotals))
	for k := range subtotals {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	avg := make([]float64, e.dim)
	for _, k := range keys {
		for x, v := range subtotals[k] {
			avg[x] += v
		}
	}
	inv := 1.0 / float64(len(e.contributors))
	for x := range avg {
		avg[x] *= inv
	}
	return avg
}

// RunWithRestart models the baseline Alg. 2 failure semantics end to end:
// when the aggregation aborts because of a crash, it restarts from the
// beginning with the remaining peers (the paper's Sec. II-A criticism of
// [4] — all traffic of the failed attempt is wasted). It returns the
// final result and the number of attempts.
func RunWithRestart(mesh transport.Network, cfg Config, models [][]float64, crash CrashPlan) (*Result, int, error) {
	attempts := 0
	for {
		attempts++
		res, err := Run(mesh, cfg, models, crash)
		if err == nil {
			return res, attempts, nil
		}
		if !errors.Is(err, ErrAborted) {
			return nil, attempts, err
		}
		// Restart with the remaining peers: re-index alive peers densely.
		alive := mesh.AlivePeers()
		if len(alive) < 2 {
			return nil, attempts, ErrInsufficientPeers
		}
		reIndex := make(map[int]int, len(alive))
		subModels := make([][]float64, len(alive))
		for newID, old := range alive {
			reIndex[old] = newID
			subModels[newID] = models[old]
		}
		// Carry over crash plans that have not fired yet (a peer whose
		// plan fired is no longer alive, so it has no new index).
		subCrash := CrashPlan{}
		for old, ph := range crash {
			if newID, ok := reIndex[old]; ok {
				subCrash[newID] = ph
			}
		}
		mesh = transport.NewMesh(len(alive), mesh.Counter())
		cfg.N, cfg.K = len(alive), len(alive)
		cfg.Leader = 0
		models = subModels
		crash = subCrash
	}
}
