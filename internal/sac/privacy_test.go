package sac

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/secretshare"
	"repro/internal/transport"
)

// corr computes the Pearson correlation between two equal-length vectors.
func corr(a, b []float64) float64 {
	var sa, sb, sab, saa, sbb float64
	n := float64(len(a))
	for i := range a {
		sa += a[i]
		sb += b[i]
		sab += a[i] * b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// An honest-but-curious leader must learn nothing about any individual
// model from its protocol view. With K > 1 the leader holds only
// N−K+1 < N shares of each model; under MaskDivider every proper subset
// of shares is independent of the secret, so the partial sum the leader
// can form from its view must be uncorrelated with the true model.
func TestLeaderViewRevealsNothingWithMasking(t *testing.T) {
	const n, k, dim = 5, 3, 4096
	const leader = 0
	r := rand.New(rand.NewSource(1))
	models := randModels(r, n, dim)

	mesh := transport.NewMesh(n, nil)
	// Capture every share the leader receives, per contributing peer.
	leaderShares := map[int][][]float64{}
	mesh.Observe(func(m transport.Message) {
		if m.To == leader && m.Kind == KindShare {
			leaderShares[m.From] = append(leaderShares[m.From], m.Payload)
		}
	})
	cfg := Config{
		N: n, K: k, Leader: leader, Mode: ModeLeader,
		Divider: secretshare.MaskDivider{Scale: 20}, Rng: r,
	}
	res, err := Run(mesh, cfg, models, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Protocol correctness first.
	want := trueMean(models, allPeers(n))
	if d := maxAbsDiff(res.Avg, want); d > 1e-8 {
		t.Fatalf("average off by %v", d)
	}
	// The leader sees exactly N−K+1 shares of each other peer's model.
	for p := 0; p < n; p++ {
		if p == leader {
			continue
		}
		if got := len(leaderShares[p]); got != n-k+1 {
			t.Fatalf("leader holds %d shares of peer %d, want %d", got, p, n-k+1)
		}
		// Partial reconstruction from the leader's view correlates with
		// nothing: |corr| stays at noise level (≈1/√dim) rather than 1.
		partial := make([]float64, dim)
		for _, sh := range leaderShares[p] {
			for j, v := range sh {
				partial[j] += v
			}
		}
		if c := math.Abs(corr(partial, models[p])); c > 0.1 {
			t.Fatalf("leader's partial view of peer %d correlates with its model: %v", p, c)
		}
	}
}

// The contrast the secretshare package documents, observed at the
// protocol level: with the paper's Alg. 1 (scalar fractions) every single
// share IS collinear with the model, so a curious leader learns the
// direction of every peer's weight vector.
func TestLeaderViewUnderScalarDividerIsCollinear(t *testing.T) {
	const n, k, dim = 5, 3, 4096
	const leader = 0
	r := rand.New(rand.NewSource(2))
	models := randModels(r, n, dim)

	mesh := transport.NewMesh(n, nil)
	var oneShare []float64
	var from int = -1
	mesh.Observe(func(m transport.Message) {
		if m.To == leader && m.Kind == KindShare && oneShare == nil {
			oneShare = m.Payload
			from = m.From
		}
	})
	cfg := Config{N: n, K: k, Leader: leader, Mode: ModeLeader, Rng: r}
	if _, err := Run(mesh, cfg, models, nil); err != nil {
		t.Fatal(err)
	}
	if oneShare == nil {
		t.Fatal("no share captured")
	}
	if c := corr(oneShare, models[from]); c < 0.99 {
		t.Fatalf("Alg. 1 share should be collinear with the model, corr = %v", c)
	}
}

// Subtotals, on the other hand, are sums over every contributor's share
// and may be exchanged safely: a subtotal's correlation with any single
// model is bounded by the 1/N mixing (it is not independent — it is an
// additive mixture — but reveals no more than the aggregate does).
func TestSubtotalsAreMixtures(t *testing.T) {
	const n, dim = 8, 8192
	r := rand.New(rand.NewSource(3))
	models := randModels(r, n, dim)
	mesh := transport.NewMesh(n, nil)
	var subtotal []float64
	var owner int = -1
	mesh.Observe(func(m transport.Message) {
		if m.Kind == KindSubtotal && subtotal == nil {
			subtotal = m.Payload
			owner = m.From
		}
	})
	cfg := Config{N: n, K: n, Mode: ModeBroadcast, Divider: secretshare.MaskDivider{Scale: 20}, Rng: r}
	if _, err := Run(mesh, cfg, models, nil); err != nil {
		t.Fatal(err)
	}
	if subtotal == nil {
		t.Fatal("no subtotal captured")
	}
	// A subtotal of masked shares is dominated by the masks of the other
	// n−1 peers: correlation with the owner's model stays far below 1.
	if c := math.Abs(corr(subtotal, models[owner])); c > 0.5 {
		t.Fatalf("subtotal correlates too strongly with one model: %v", c)
	}
}
