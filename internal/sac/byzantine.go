// Byzantine adversary model and robust-aggregation guard for the SAC
// engine.
//
// The paper's protocol tolerates crash faults only; this file opens the
// Byzantine scenario space the chaos harness explores (ROADMAP item 3).
// An AdversaryPlan marks peers with a Behavior, each modelling one
// classic attack on a secret-sharing aggregation:
//
//	corrupt-shares     different (perturbed) share copies per receiver
//	inflate-subtotal   reported subtotals offset by a huge constant
//	zero-subtotal      reported subtotals zeroed
//	equivocate         the leader announces divergent results to
//	                   different peers (only manifests when the marked
//	                   peer leads; otherwise the peer acts honestly)
//	poison-scale       the peer's model update scaled by ×1000 before
//	                   sharing
//	poison-sign-flip   the peer's model update negated before sharing
//
// The Guard is the defence: a share-range filter (honest ScalarDivider
// shares are collinear fractions f·w with f ∈ (0,1], so ‖share‖∞ never
// exceeds ‖w‖∞ ≤ ShareBound; anything larger is provably forged and its
// sender is accused and excluded), a cross-checked subtotal combination
// (every alive holder of a share index submits its copy and a robust
// combiner — coordinate-wise median by default — outvotes a minority of
// liars), and a leader-result audit (the leader broadcasts its claimed
// per-index subtotals plus the result; peers check self-consistency and
// echo digests to catch equivocation). Soundness needs an honest
// majority among the alive holders of every share index: with
// replication N−K+1 this means N−K+1 ≥ 2f+1 byzantine holders per
// index, e.g. K = N−2 tolerates f = 1 per subgroup.
//
// Detections surface on the sac/byzantine_* telemetry counters and in
// Result.Excluded / Result.Mismatches / Result.LeaderAccused.
package sac

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/fl"
	"repro/internal/secretshare"
	"repro/internal/transport"
)

// Behavior names one adversarial strategy. The string form is stable so
// plans serialize into chaos replay files.
type Behavior string

// Adversarial behaviors.
const (
	// ByzNone is the zero value: the peer follows the protocol.
	ByzNone Behavior = ""
	// ByzCorruptShares sends each receiver a differently perturbed copy
	// of every share (the peer keeps its true share locally).
	ByzCorruptShares Behavior = "corrupt-shares"
	// ByzInflateSubtotal adds InflateOffset to every subtotal the peer
	// reports (its own index and the replicas it backs).
	ByzInflateSubtotal Behavior = "inflate-subtotal"
	// ByzZeroSubtotal reports all-zero subtotals.
	ByzZeroSubtotal Behavior = "zero-subtotal"
	// ByzEquivocate makes the peer, when it is the leader, announce
	// divergent results to different peers. A non-leader with this mark
	// acts honestly.
	ByzEquivocate Behavior = "equivocate"
	// ByzPoisonScale scales the peer's model by PoisonScaleFactor before
	// dividing it into shares.
	ByzPoisonScale Behavior = "poison-scale"
	// ByzPoisonSignFlip negates the peer's model before sharing.
	ByzPoisonSignFlip Behavior = "poison-sign-flip"
)

// valid reports whether b is a known behavior.
func (b Behavior) valid() bool {
	switch b {
	case ByzNone, ByzCorruptShares, ByzInflateSubtotal, ByzZeroSubtotal,
		ByzEquivocate, ByzPoisonScale, ByzPoisonSignFlip:
		return true
	}
	return false
}

// AdversaryPlan maps peer index → behavior for one aggregation.
type AdversaryPlan map[int]Behavior

// Attack magnitudes. They are constants (not knobs) so detections and
// deviation bounds asserted by the chaos oracle are reproducible.
const (
	// PoisonScaleFactor multiplies a poisoned model.
	PoisonScaleFactor = 1000.0
	// InflateOffset is added to every coordinate of an inflated
	// subtotal — a pure offset, so the induced shift on a plain mean is
	// exactly InflateOffset/|contributors| per coordinate, never
	// accidentally cancelled.
	InflateOffset = 1e6
	// EquivocateOffset separates the two results an equivocating leader
	// announces.
	EquivocateOffset = 1e4
	// CorruptNoiseAmp bounds the per-coordinate perturbation of
	// corrupted share copies.
	CorruptNoiseAmp = 0.5
)

// Guard arms the engine's robust-aggregation defences. The zero value
// of each field disables that defence; Config.Guard == nil disables all
// of them (the crash-only protocol of the paper).
type Guard struct {
	// ShareBound, when positive, is the honest-share magnitude bound:
	// honest peers accuse (and the engine globally excludes) any
	// contributor whose share exceeds it in ‖·‖∞. With the paper's
	// ScalarDivider every share of w is f·w with f ∈ (0,1], so any
	// bound ≥ max‖w‖∞ over honest models never falsely accuses.
	ShareBound float64
	// CrossCheck collects every alive holder's copy of each subtotal at
	// the leader and combines them with Combiner instead of trusting the
	// owner — the majority-outvote defence. Requires ModeLeader.
	CrossCheck bool
	// Tolerance is the consistency tolerance for subtotal mismatch
	// counting and the leader-result audit (default 1e-6).
	Tolerance float64
	// Combiner combines the holders' subtotal copies per share index
	// (default fl.CoordinateMedian). Counts are not used.
	Combiner fl.Aggregator
}

func (g *Guard) tolerance() float64 {
	if g == nil || g.Tolerance <= 0 {
		return 1e-6
	}
	return g.Tolerance
}

func (g *Guard) combiner() fl.Aggregator {
	if g == nil || g.Combiner == nil {
		return fl.CoordinateMedian{}
	}
	return g.Combiner
}

// byz returns peer i's behavior under the round's adversary plan.
func (e *engine) byz(i int) Behavior {
	if e.cfg.Adversary == nil {
		return ByzNone
	}
	return e.cfg.Adversary[i]
}

// honest reports whether peer i follows the receiver-side protocol
// (adversarial peers never help with accusations or audits).
func (e *engine) honest(i int) bool { return e.byz(i) == ByzNone }

// attackModel applies a model-poisoning behavior, returning a fresh
// copy so the caller's models stay untouched.
func attackModel(b Behavior, w []float64) []float64 {
	factor := 0.0
	switch b {
	case ByzPoisonScale:
		factor = PoisonScaleFactor
	case ByzPoisonSignFlip:
		factor = -1
	default:
		return w
	}
	out := make([]float64, len(w))
	for x, v := range w {
		out[x] = factor * v
	}
	return out
}

// corruptedCopy returns share perturbed by bounded per-coordinate noise
// drawn from the engine rng — a fresh copy per receiver, so different
// holders of the same share index receive inconsistent values.
func (e *engine) corruptedCopy(share []float64) []float64 {
	out := make([]float64, len(share))
	for x, v := range share {
		out[x] = v + (e.rng.Float64()*2-1)*CorruptNoiseAmp
	}
	return out
}

// shareOutOfRange applies the range guard at receiver j: only honest
// receivers screen, and only when a positive bound is armed.
func (e *engine) shareOutOfRange(j int, m transport.Message) bool {
	g := e.cfg.Guard
	if g == nil || g.ShareBound <= 0 || !e.honest(j) {
		return false
	}
	for _, v := range m.Payload {
		if math.Abs(v) > g.ShareBound || math.IsNaN(v) {
			return true
		}
	}
	return false
}

// accusation records one range-guard detection: accuser j caught an
// out-of-range share from a contributor.
type accusation struct{ accuser, accused int }

// broadcastAccusations publishes the collected range-guard detections
// (each accuser tells every alive peer, metadata-sized messages) and
// globally excludes the accused contributors. The accusation copies are
// drained immediately so later phases see clean inboxes.
func (e *engine) broadcastAccusations(accusations []accusation) error {
	if len(accusations) == 0 {
		return nil
	}
	n := e.cfg.N
	accused := make(map[int]bool)
	for _, a := range accusations {
		accused[a.accused] = true
		e.tel.byzShareRange.Inc()
		for l := 0; l < n; l++ {
			if l == a.accuser || !e.mesh.Alive(l) {
				continue
			}
			msg := transport.Message{From: a.accuser, To: l, Kind: KindAccuse,
				ShareIdx: a.accused, Payload: []float64{float64(a.accused)}}
			if err := e.mesh.Send(msg); err != nil {
				return err
			}
		}
	}
	for l := 0; l < n; l++ {
		if !e.mesh.Alive(l) {
			continue
		}
		if _, err := e.mesh.Drain(l); err != nil {
			return err
		}
	}
	kept := e.contributors[:0]
	for _, c := range e.contributors {
		if accused[c] {
			e.excluded = append(e.excluded, c)
			e.tel.byzExcluded.Inc()
			continue
		}
		kept = append(kept, c)
	}
	e.contributors = kept
	sort.Ints(e.excluded)
	return nil
}

// corruptSubtotals applies peer j's subtotal-lying behavior in place,
// after honest computation. Corruption covers every index j reports —
// its own and the replicas it backs — so the lie reaches both the
// trusting (plain) and the cross-checking (guarded) collection paths.
func (e *engine) corruptSubtotals(j int) {
	switch e.byz(j) {
	case ByzInflateSubtotal:
		for _, sub := range e.subtotals[j] {
			for x := range sub {
				sub[x] += InflateOffset
			}
		}
	case ByzZeroSubtotal:
		for _, sub := range e.subtotals[j] {
			for x := range sub {
				sub[x] = 0
			}
		}
	}
}

// finishLeaderGuarded is the robust replacement for finishLeader: every
// alive holder of every share index submits its subtotal copy, the
// guard's combiner (coordinate-wise median by default) merges them, and
// copies disagreeing with the combined value beyond the tolerance are
// counted as mismatches. An honest majority of holders per index makes
// the combined value exactly the honest one. The leader's result is
// then audited for equivocation before release.
func (e *engine) finishLeaderGuarded() (*Result, error) {
	n, k, leader := e.cfg.N, e.cfg.K, e.cfg.Leader
	g := e.cfg.Guard
	if !e.mesh.Alive(leader) || e.subtotals[leader] == nil {
		return nil, ErrLeaderCrashed
	}
	tol := g.tolerance()
	have := e.sc.haveMap(n)
	var recovered []int
	for s := 0; s < n; s++ {
		holders, err := secretshare.HoldersOf(s, n, k)
		if err != nil {
			return nil, err
		}
		var cands [][]float64
		ownerPresent := false
		for _, h := range holders {
			if !e.mesh.Alive(h) || e.subtotals[h] == nil {
				continue
			}
			sub, ok := e.subtotals[h][s]
			if !ok {
				continue
			}
			if h == s {
				ownerPresent = true
			}
			if h != leader {
				msg := transport.Message{From: h, To: leader, Kind: KindSubtotal, ShareIdx: s, Payload: sub}
				if err := e.mesh.Send(msg); err != nil {
					return nil, err
				}
				e.tel.subtotalsSent.Inc()
			}
			cands = append(cands, sub)
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: no alive holder of subtotal %d", ErrInsufficientPeers, s)
		}
		comb, err := g.combiner().Aggregate(cands, nil)
		if err != nil {
			return nil, err
		}
		for _, cand := range cands {
			if linfDiff(cand, comb) > tol {
				e.mismatches++
				e.tel.byzMismatch.Inc()
			}
		}
		if !ownerPresent {
			recovered = append(recovered, s)
		}
		have[s] = comb
	}
	if len(recovered) > 0 {
		e.tel.subtotalsRecovered.Add(int64(len(recovered)))
	}
	avg := e.average(have)
	if err := e.auditLeader(have, avg); err != nil {
		return nil, err
	}
	// Leave every inbox clean for the mesh bookkeeping.
	for j := 0; j < n; j++ {
		if !e.mesh.Alive(j) {
			continue
		}
		if _, err := e.mesh.Drain(j); err != nil {
			return nil, err
		}
	}
	return &Result{Avg: avg, Contributors: e.contributors, Recovered: recovered}, nil
}

// auditLeader is the equivocation defence: the leader broadcasts its
// claimed per-index combined subtotals plus the result it announces,
// and every honest peer (a) recomputes the average from the claims and
// compares it against its announced result, and (b) echoes a digest of
// what it received to every other peer so divergent announcements are
// exposed even when each copy is self-consistent. An equivocating
// leader sends the honest claims with a lying result to every second
// receiver, which both checks catch. The claims reveal only sums over
// all contributors' shares — no individual model — so the privacy
// invariant is untouched.
func (e *engine) auditLeader(have map[int][]float64, avg []float64) error {
	n, leader := e.cfg.N, e.cfg.Leader
	tol := e.cfg.Guard.tolerance()
	claims := make([]float64, 0, n*e.dim)
	for s := 0; s < n; s++ {
		claims = append(claims, have[s]...)
	}
	var lie []float64
	if e.byz(leader) == ByzEquivocate {
		lie = make([]float64, len(avg))
		for x, v := range avg {
			lie[x] = v + EquivocateOffset
		}
	}
	accused := false
	digests := make(map[int]uint64, n)
	slot := 0
	for j := 0; j < n; j++ {
		if j == leader || !e.mesh.Alive(j) {
			continue
		}
		result := avg
		if lie != nil && slot%2 == 1 {
			result = lie
		}
		slot++
		for _, msg := range []transport.Message{
			{From: leader, To: j, Kind: KindClaims, ShareIdx: -1, Payload: claims},
			{From: leader, To: j, Kind: KindResult, ShareIdx: -1, Payload: result},
		} {
			if err := e.mesh.Send(msg); err != nil {
				return err
			}
		}
		if !e.honest(j) {
			continue
		}
		// Self-consistency: the result must be the average implied by the
		// claims. Summation runs in the same ascending-index order as
		// average(), so an honest leader matches bit-for-bit.
		check := make([]float64, e.dim)
		for s := 0; s < n; s++ {
			for x := 0; x < e.dim; x++ {
				check[x] += claims[s*e.dim+x]
			}
		}
		inv := 1.0 / float64(len(e.contributors))
		for x := range check {
			check[x] *= inv
		}
		if linfDiff(check, result) > tol {
			accused = true
		}
		digests[j] = auditDigest(claims, result)
	}
	// Digest echo: every honest receiver tells every other alive peer
	// what it heard; any divergence convicts the leader.
	verifiers := make([]int, 0, len(digests))
	for j := range digests {
		verifiers = append(verifiers, j)
	}
	sort.Ints(verifiers)
	for _, j := range verifiers {
		for l := 0; l < n; l++ {
			if l == j || !e.mesh.Alive(l) {
				continue
			}
			msg := transport.Message{From: j, To: l, Kind: KindAudit, ShareIdx: -1,
				Payload: []float64{math.Float64frombits(digests[j])}}
			if err := e.mesh.Send(msg); err != nil {
				return err
			}
		}
	}
	for i := 1; i < len(verifiers); i++ {
		if digests[verifiers[i]] != digests[verifiers[0]] {
			accused = true
		}
	}
	if accused {
		e.leaderAccused = true
		e.tel.byzEquivocation.Inc()
	}
	return nil
}

// auditDigest fingerprints an announced (claims, result) pair.
func auditDigest(claims, result []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range result {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, v := range claims {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// linfDiff returns ‖a−b‖∞ (Inf on length mismatch).
func linfDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	max := 0.0
	for x := range a {
		if d := math.Abs(a[x] - b[x]); d > max {
			max = d
		}
	}
	return max
}
