package sac

import "repro/internal/secretshare"

// Scratch holds the engine's round-to-round reusable buffers: the
// per-contributor flat share blocks (fed to Divider.DivideInto), the
// dim-length subtotal vectors, and the map containers of the receive
// and subtotal bookkeeping. All buffers are keyed by the round shape
// (N, dim) and dropped when it changes, so one Scratch can serve a
// sequence of same-shaped aggregations — the steady state of federated
// training, where every round splits the same model dimension across
// the same subgroup — without re-allocating ~N²·dim floats per round.
//
// Reuse is observationally invisible: vectors are zeroed (or fully
// overwritten) when grabbed, maps are cleared, and Result.Avg is always
// freshly allocated, so results stay bit-identical with and without a
// Scratch. The one sharp edge is aliasing: share and subtotal payloads
// sent through the mesh point into scratch memory, which the next
// round overwrites. Mesh observers (Mesh.Observe) that retain payloads
// across rounds must copy them, and a Scratch must not be shared by
// two concurrent aggregations — give each subgroup its own (core.System
// does exactly that).
//
// The zero value is ready to use; pass it via Config.Scratch.
type Scratch struct {
	n, dim int

	shareBlocks [][]float64   // contributor i's flat n·dim share backing
	shareViews  [][][]float64 // and its per-share views into the block

	subVecs []([]float64) // free list of dim-length subtotal vectors
	subNext int           // vectors handed out this round

	received []map[int]map[int][]float64 // phase-1 outer containers
	inner    []map[int][]float64         // free list of by-contributor maps
	innNext  int

	subtotals []map[int][]float64 // phase-2 per-peer containers
	have      map[int][]float64   // leader's collected subtotals
	keys      []int               // sort scratch for average

	// replicas caches the (n, k) replica assignment: it depends only on
	// the round shape, so the engine computes it once per shape instead
	// of n+1 allocations per round (which at X-layer scale — tens of
	// thousands of subgroup SACs per aggregation — dominated the garbage).
	replicas  [][]int
	replFlat  []int
	replK     int
}

// begin rearms the scratch for a round of shape (n, dim): free lists
// rewind so every buffer handed out last round is reclaimable, and a
// shape change drops everything.
func (s *Scratch) begin(n, dim int) {
	if s == nil {
		return
	}
	if s.n != n || s.dim != dim {
		*s = Scratch{n: n, dim: dim}
	}
	s.subNext = 0
	s.innNext = 0
}

// shareScratch returns contributor i's division scratch (nil slices on
// first use — DivideInto grows them).
func (s *Scratch) shareScratch(i int) ([]float64, [][]float64) {
	if s == nil {
		return nil, nil
	}
	if len(s.shareBlocks) < s.n {
		s.shareBlocks = make([][]float64, s.n)
		s.shareViews = make([][][]float64, s.n)
	}
	return s.shareBlocks[i], s.shareViews[i]
}

// keepShareScratch stores contributor i's (possibly regrown) division
// buffers for the next round.
func (s *Scratch) keepShareScratch(i int, block []float64, views [][]float64) {
	if s == nil {
		return
	}
	s.shareBlocks[i] = block
	s.shareViews[i] = views
}

// subVec returns a zeroed dim-length vector, reusing last round's.
func (s *Scratch) subVec(dim int) []float64 {
	if s == nil {
		return make([]float64, dim)
	}
	if s.subNext == len(s.subVecs) {
		s.subVecs = append(s.subVecs, make([]float64, dim))
	}
	v := s.subVecs[s.subNext][:dim]
	s.subNext++
	for i := range v {
		v[i] = 0
	}
	return v
}

// receivedMaps returns the phase-1 receive structure: n empty outer
// maps (cleared, not reallocated, on reuse).
func (s *Scratch) receivedMaps(n int) []map[int]map[int][]float64 {
	if s == nil {
		out := make([]map[int]map[int][]float64, n)
		for j := range out {
			out[j] = make(map[int]map[int][]float64)
		}
		return out
	}
	if len(s.received) != n {
		s.received = make([]map[int]map[int][]float64, n)
	}
	for j := range s.received {
		if s.received[j] == nil {
			s.received[j] = make(map[int]map[int][]float64)
		} else {
			clear(s.received[j])
		}
	}
	return s.received
}

// innerMap returns an empty by-contributor share map from the free
// list.
func (s *Scratch) innerMap() map[int][]float64 {
	if s == nil {
		return make(map[int][]float64)
	}
	if s.innNext == len(s.inner) {
		s.inner = append(s.inner, make(map[int][]float64))
	}
	m := s.inner[s.innNext]
	s.innNext++
	clear(m)
	return m
}

// subtotalSlice returns the phase-2 per-peer slice, nil-filled. The
// per-peer maps themselves come from innerMap (same shape).
func (s *Scratch) subtotalSlice(n int) []map[int][]float64 {
	if s == nil {
		return make([]map[int][]float64, n)
	}
	if len(s.subtotals) != n {
		s.subtotals = make([]map[int][]float64, n)
	}
	for j := range s.subtotals {
		s.subtotals[j] = nil
	}
	return s.subtotals
}

// haveMap returns the leader's empty subtotal-collection map.
func (s *Scratch) haveMap(n int) map[int][]float64 {
	if s == nil {
		return make(map[int][]float64, n)
	}
	if s.have == nil {
		s.have = make(map[int][]float64, n)
	} else {
		clear(s.have)
	}
	return s.have
}

// replicaSets returns the cached replica assignment for shape (n, k),
// computing it on first use (or when k changed under an unchanged n —
// begin only keys on (n, dim)). The sets share one flat backing array.
func (s *Scratch) replicaSets(n, k int) ([][]int, error) {
	if s.replicas != nil && len(s.replicas) == n && s.replK == k {
		return s.replicas, nil
	}
	sets := make([][]int, n)
	flat := make([]int, 0, n*(n-k+1))
	for j := 0; j < n; j++ {
		start := len(flat)
		var err error
		flat, err = secretshare.AppendReplicaIndices(flat, j, n, k)
		if err != nil {
			return nil, err
		}
		sets[j] = flat[start:len(flat):len(flat)]
	}
	s.replicas, s.replFlat, s.replK = sets, flat, k
	return sets, nil
}

// sortKeys returns a reusable int slice for average's deterministic
// key ordering.
func (s *Scratch) sortKeys(capHint int) []int {
	if s == nil {
		return make([]int, 0, capHint)
	}
	if cap(s.keys) < capHint {
		s.keys = make([]int, 0, capHint)
	}
	return s.keys[:0]
}
