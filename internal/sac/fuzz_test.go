package sac

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/transport"
)

// adversarialKinds are the message kinds an attacker might forge —
// protocol kinds, a stale kind from "another subsystem", and garbage.
var adversarialKinds = []string{
	KindShare, KindSubtotal, KindRecoveryReq, KindRecovery, "sac/bogus", "",
}

// FuzzHandleMessage injects arbitrary adversarial messages into the mesh
// before an aggregation runs: forged kinds, out-of-range share indices,
// payloads of the wrong dimension, and replays of a whole earlier round.
// The engine must never panic, must never double-count a model, and —
// when none of the injections is well-formed enough to masquerade as a
// genuine share or subtotal — must still produce the exact plaintext
// average.
func FuzzHandleMessage(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2), []byte{0, 1, 2, 9, 3})
	f.Add(int64(2), uint8(3), uint8(3), []byte{1, 0, 0, 0, 0, 2, 1, 1, 7, 8})
	f.Add(int64(3), uint8(6), uint8(1), []byte{255, 255, 255, 255, 255})
	f.Add(int64(4), uint8(1), uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, nRaw, kRaw uint8, raw []byte) {
		n := 1 + int(nRaw)%6 // 1..6 peers
		k := 1 + int(kRaw)%n // 1..n threshold
		const dim = 3
		rng := rand.New(rand.NewSource(seed))
		models := make([][]float64, n)
		for i := range models {
			models[i] = make([]float64, dim)
			for d := range models[i] {
				models[i][d] = math.Round(rng.Float64()*512) / 8
			}
		}
		mesh := transport.NewMesh(n, nil)
		cfg := Config{N: n, K: k, Leader: int(nRaw) % n, Mode: ModeLeader,
			Rng: rand.New(rand.NewSource(seed + 1))}

		// Decode the fuzz bytes into injected messages, five bytes each:
		// from, to, kind selector, share index (signed around zero so
		// negatives are covered), payload length.
		clean := true // no injection could pass the engine's validators
		for i := 0; i+5 <= len(raw); i += 5 {
			m := transport.Message{
				From:     int(raw[i]) % n,
				To:       int(raw[i+1]) % n,
				Kind:     adversarialKinds[int(raw[i+2])%len(adversarialKinds)],
				ShareIdx: int(raw[i+3]) - 128,
				Payload:  make([]float64, int(raw[i+4])%(2*dim+1)),
			}
			for d := range m.Payload {
				m.Payload[d] = rng.Float64() * 100
			}
			if err := mesh.Send(m); err != nil {
				t.Fatalf("inject: %v", err)
			}
			wellFormed := (m.Kind == KindShare || m.Kind == KindSubtotal) &&
				m.ShareIdx >= 0 && m.ShareIdx < n && len(m.Payload) == dim
			if wellFormed {
				clean = false
			}
		}

		res, err := Run(mesh, cfg, models, nil) // must not panic
		if err != nil {
			// With no crashes scheduled the only legitimate failure is an
			// injected message having displaced protocol state — which a
			// well-formed forgery may do; anything else is a bug.
			if clean {
				t.Fatalf("n=%d k=%d: clean run failed: %v", n, k, err)
			}
			return
		}
		if got := len(res.Avg); got != dim {
			t.Fatalf("avg dimension %d, want %d", got, dim)
		}
		if len(res.Contributors) != n {
			t.Fatalf("contributors %v, want all %d peers", res.Contributors, n)
		}
		if clean {
			// Exactness: injections were all discarded, so the average is
			// the plain mean — in particular no model was double-counted.
			for d := 0; d < dim; d++ {
				want := 0.0
				for i := range models {
					want += models[i][d]
				}
				want /= float64(n)
				if math.Abs(res.Avg[d]-want) > 1e-9 {
					t.Fatalf("n=%d k=%d: avg[%d] = %g, want %g", n, k, d, res.Avg[d], want)
				}
			}
		}

		// Replay the entire round: every message of the finished round is
		// still queued nowhere (the engine drains as it goes), but a second
		// run on the same mesh sees any residue plus fresh state. It must
		// not panic and must again count every peer exactly once.
		res2, err := Run(mesh, cfg, models, nil)
		if err == nil && len(res2.Contributors) != n {
			t.Fatalf("replayed round contributors %v, want %d peers", res2.Contributors, n)
		}
	})
}
