package sac

import (
	"math/rand"
	"testing"

	"repro/internal/transport"
)

// The SACRoundAllocs pair is the allocation contract of the scratch
// path: identical 8-peer k-out-of-n rounds, one variant allocating
// everything per round (Scratch nil) and one reusing a warmed Scratch.
// `make bench-check` gates allocs/op of the pooled variant at ≤ 0.5×
// the fresh variant (cmd/p2pfl-benchjson -pairs
// 'allocs:SACRoundAllocsPooled=SACRoundAllocsFresh@0.5'). Both
// variants pay the same per-round mesh and message costs, so the cut
// comes entirely from the engine's share blocks, subtotal vectors and
// map containers.
func benchmarkSACRoundAllocs(b *testing.B, sc *Scratch) {
	const roundsPerOp = 4
	r := rand.New(rand.NewSource(29))
	models := randModels(r, 8, 1024)
	counter := transport.NewCounter() // shared: counter map growth is not the contract
	oneRound := func() {
		mesh := transport.NewMesh(8, counter)
		cfg := Config{N: 8, K: 6, Leader: 0, Mode: ModeLeader, Rng: r, Scratch: sc}
		if _, err := Run(mesh, cfg, models, nil); err != nil {
			b.Fatal(err)
		}
	}
	for w := 0; w < roundsPerOp; w++ {
		oneRound() // warm: scratch provisioned, counter kinds interned
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < roundsPerOp; j++ {
			oneRound()
		}
	}
}

func BenchmarkSACRoundAllocsFresh(b *testing.B)  { benchmarkSACRoundAllocs(b, nil) }
func BenchmarkSACRoundAllocsPooled(b *testing.B) { benchmarkSACRoundAllocs(b, &Scratch{}) }
