package sac

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/secretshare"
	"repro/internal/transport"
)

func randModels(r *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		m := make([]float64, dim)
		for j := range m {
			m[j] = r.NormFloat64() * 5
		}
		out[i] = m
	}
	return out
}

func trueMean(models [][]float64, who []int) []float64 {
	dim := len(models[0])
	avg := make([]float64, dim)
	for _, i := range who {
		for j, v := range models[i] {
			avg[j] += v
		}
	}
	for j := range avg {
		avg[j] /= float64(len(who))
	}
	return avg
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func allPeers(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestBroadcastMatchesPlainAverage(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 3, 5, 10} {
		models := randModels(r, n, 16)
		mesh := transport.NewMesh(n, nil)
		res, err := Run(mesh, Config{N: n, K: n, Mode: ModeBroadcast, Rng: r}, models, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := maxAbsDiff(res.Avg, trueMean(models, allPeers(n))); d > 1e-9 {
			t.Fatalf("n=%d: SAC average off by %v", n, d)
		}
		if len(res.Contributors) != n {
			t.Fatalf("contributors = %v", res.Contributors)
		}
	}
}

func TestBroadcastCostMatchesPaperFormula(t *testing.T) {
	// Alg. 2 total cost per aggregation: 2N(N−1)|w| (Sec. III-B).
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 5, 10} {
		dim := 32
		models := randModels(r, n, dim)
		mesh := transport.NewMesh(n, nil)
		if _, err := Run(mesh, Config{N: n, K: n, Mode: ModeBroadcast, Rng: r}, models, nil); err != nil {
			t.Fatal(err)
		}
		w := int64(8 * dim)
		want := int64(2*n*(n-1)) * w
		if got := mesh.Counter().TotalBytes(); got != want {
			t.Fatalf("n=%d: bytes = %d, want %d", n, got, want)
		}
	}
}

func TestLeaderModeNOutOfNCost(t *testing.T) {
	// Subgroup accounting (Sec. VII-A): (n²−1)|w| per subgroup SAC.
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 3, 5, 8} {
		dim := 16
		models := randModels(r, n, dim)
		mesh := transport.NewMesh(n, nil)
		res, err := Run(mesh, Config{N: n, K: n, Leader: 0, Mode: ModeLeader, Rng: r}, models, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(res.Avg, trueMean(models, allPeers(n))); d > 1e-9 {
			t.Fatalf("n=%d: average off by %v", n, d)
		}
		w := int64(8 * dim)
		want := int64(n*n-1) * w
		if got := mesh.Counter().TotalBytes(); got != want {
			t.Fatalf("n=%d: bytes = %d, want %d", n, got, want)
		}
	}
}

func TestLeaderModeKOutOfNCostNoFailure(t *testing.T) {
	// Sec. VII-B: {n(n−1)(n−k+1)+(k−1)}|w| per subgroup SAC.
	r := rand.New(rand.NewSource(4))
	for _, nk := range [][2]int{{3, 2}, {5, 3}, {5, 5}, {7, 4}} {
		n, k := nk[0], nk[1]
		dim := 8
		models := randModels(r, n, dim)
		mesh := transport.NewMesh(n, nil)
		res, err := Run(mesh, Config{N: n, K: k, Leader: 0, Mode: ModeLeader, Rng: r}, models, nil)
		if err != nil {
			t.Fatalf("%d-%d: %v", k, n, err)
		}
		if d := maxAbsDiff(res.Avg, trueMean(models, allPeers(n))); d > 1e-9 {
			t.Fatalf("%d-%d: average off by %v", k, n, d)
		}
		w := int64(8 * dim)
		want := int64(n*(n-1)*(n-k+1)+(k-1)) * w
		if got := mesh.Counter().TotalBytes(); got != want {
			t.Fatalf("%d-%d: bytes = %d, want %d", k, n, got, want)
		}
	}
}

func TestFig3TwoOutOfThreeDropout(t *testing.T) {
	// The paper's Fig. 3: one peer drops out after sending shares in a
	// 2-out-of-3 SAC; the remaining peers still complete the aggregation
	// and the dropout's model is included.
	r := rand.New(rand.NewSource(5))
	models := randModels(r, 3, 16)
	mesh := transport.NewMesh(3, nil)
	// "Alice" (peer 2, whose subtotal the leader does not replicate)
	// drops out mid-protocol, forcing a recovery fetch.
	crash := CrashPlan{2: AfterShares}
	res, err := Run(mesh, Config{N: 3, K: 2, Leader: 0, Mode: ModeLeader, Rng: r}, models, crash)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contributors) != 3 {
		t.Fatalf("contributors = %v, want all 3 (Alice's shares were sent)", res.Contributors)
	}
	if d := maxAbsDiff(res.Avg, trueMean(models, allPeers(3))); d > 1e-9 {
		t.Fatalf("average off by %v", d)
	}
	if len(res.Recovered) == 0 {
		t.Fatal("expected at least one recovered subtotal")
	}
}

func TestBeforeSharesDropoutExcludesModel(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	models := randModels(r, 5, 8)
	mesh := transport.NewMesh(5, nil)
	crash := CrashPlan{3: BeforeShares}
	res, err := Run(mesh, Config{N: 5, K: 3, Leader: 0, Mode: ModeLeader, Rng: r}, models, crash)
	if err != nil {
		t.Fatal(err)
	}
	want := trueMean(models, []int{0, 1, 2, 4})
	if d := maxAbsDiff(res.Avg, want); d > 1e-9 {
		t.Fatalf("average off by %v; dropout's model must be excluded", d)
	}
}

func TestMaxTolerableFailures(t *testing.T) {
	// k-out-of-n survives exactly n−k AfterShares crashes.
	r := rand.New(rand.NewSource(7))
	n, k := 5, 3
	models := randModels(r, n, 8)
	mesh := transport.NewMesh(n, nil)
	crash := CrashPlan{1: AfterShares, 2: AfterShares} // n−k = 2 crashes
	res, err := Run(mesh, Config{N: n, K: k, Leader: 0, Mode: ModeLeader, Rng: r}, models, crash)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Avg, trueMean(models, allPeers(n))); d > 1e-9 {
		t.Fatalf("average off by %v", d)
	}
}

func TestTooManyFailures(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	n, k := 5, 3
	models := randModels(r, n, 8)
	mesh := transport.NewMesh(n, nil)
	// n−k+1 = 3 consecutive crashes kill every holder of some subtotal.
	crash := CrashPlan{1: AfterShares, 2: AfterShares, 3: AfterShares}
	_, err := Run(mesh, Config{N: n, K: k, Leader: 0, Mode: ModeLeader, Rng: r}, models, crash)
	if !errors.Is(err, ErrInsufficientPeers) {
		t.Fatalf("err = %v, want ErrInsufficientPeers", err)
	}
}

func TestLeaderCrashErrors(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	models := randModels(r, 3, 4)
	mesh := transport.NewMesh(3, nil)
	_, err := Run(mesh, Config{N: 3, K: 2, Leader: 0, Mode: ModeLeader, Rng: r}, models, CrashPlan{0: AfterShares})
	if !errors.Is(err, ErrLeaderCrashed) {
		t.Fatalf("err = %v, want ErrLeaderCrashed", err)
	}
}

func TestBroadcastAbortsOnAnyCrash(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	models := randModels(r, 4, 4)
	for _, phase := range []Phase{BeforeShares, AfterShares} {
		mesh := transport.NewMesh(4, nil)
		_, err := Run(mesh, Config{N: 4, K: 4, Mode: ModeBroadcast, Rng: r}, models, CrashPlan{2: phase})
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("phase %v: err = %v, want ErrAborted", phase, err)
		}
	}
}

func TestRunWithRestartCompletesAfterCrash(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	models := randModels(r, 4, 8)
	mesh := transport.NewMesh(4, nil)
	res, attempts, err := RunWithRestart(mesh, Config{N: 4, K: 4, Mode: ModeBroadcast, Rng: r}, models, CrashPlan{1: AfterShares})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	// Restart runs with peers {0,2,3}: their models are averaged.
	want := trueMean(models, []int{0, 2, 3})
	if d := maxAbsDiff(res.Avg, want); d > 1e-9 {
		t.Fatalf("average off by %v", d)
	}
}

func TestRunWithRestartWastesTraffic(t *testing.T) {
	// The aborted attempt's traffic must remain on the counter — the
	// baseline's weakness the paper calls out.
	r := rand.New(rand.NewSource(12))
	dim := 16
	models := randModels(r, 4, dim)
	mesh := transport.NewMesh(4, nil)
	_, _, err := RunWithRestart(mesh, Config{N: 4, K: 4, Mode: ModeBroadcast, Rng: r}, models, CrashPlan{1: AfterShares})
	if err != nil {
		t.Fatal(err)
	}
	w := int64(8 * dim)
	clean := int64(2*3*2) * w // successful 3-peer run: 2·3·2·|w|
	if got := mesh.Counter().TotalBytes(); got <= clean {
		t.Fatalf("bytes = %d: aborted attempt's traffic missing", got)
	}
}

func TestConfigValidation(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	models := randModels(r, 3, 4)
	mesh := transport.NewMesh(3, nil)
	cases := []Config{
		{N: 0, K: 1},
		{N: 3, K: 0},
		{N: 3, K: 4},
		{N: 3, K: 2, Mode: ModeBroadcast}, // broadcast needs K=N
		{N: 3, K: 3, Mode: ModeLeader, Leader: 5},  // leader out of range
		{N: 3, K: 3, Mode: ModeLeader, Leader: -1}, // leader out of range
	}
	for i, cfg := range cases {
		if _, err := Run(mesh, cfg, models, nil); err == nil {
			t.Fatalf("case %d: want config error", i)
		}
	}
	// Mismatched mesh/models.
	if _, err := Run(transport.NewMesh(2, nil), Config{N: 3, K: 3}, models, nil); err == nil {
		t.Fatal("want mesh-size error")
	}
	if _, err := Run(mesh, Config{N: 3, K: 3, Mode: ModeLeader}, models[:2], nil); err == nil {
		t.Fatal("want model-count error")
	}
	if _, err := Run(mesh, Config{N: 3, K: 3, Mode: ModeLeader}, [][]float64{{1}, {1, 2}, {1}}, nil); err == nil {
		t.Fatal("want ragged-model error")
	}
}

func TestMaskDividerAlsoWorks(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	models := randModels(r, 5, 8)
	mesh := transport.NewMesh(5, nil)
	cfg := Config{N: 5, K: 3, Leader: 2, Mode: ModeLeader, Rng: r, Divider: secretshare.MaskDivider{Scale: 20}}
	res, err := Run(mesh, cfg, models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Avg, trueMean(models, allPeers(5))); d > 1e-9 {
		t.Fatalf("average off by %v", d)
	}
}

// Property: for random n, k, leader and crash subsets of size ≤ n−k
// (excluding the leader), k-out-of-n SAC recovers the exact average of
// all contributing models.
func TestFaultToleranceProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw, crashRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%6) + 3 // 3..8
		k := int(kRaw)%(n-1) + 2
		if k > n {
			k = n
		}
		leader := r.Intn(n)
		models := randModels(r, n, 6)
		// Crash up to n−k non-leader peers after shares.
		maxCrash := n - k
		numCrash := 0
		if maxCrash > 0 {
			numCrash = int(crashRaw) % (maxCrash + 1)
		}
		crash := CrashPlan{}
		perm := r.Perm(n)
		for _, p := range perm {
			if len(crash) >= numCrash {
				break
			}
			if p != leader {
				crash[p] = AfterShares
			}
		}
		mesh := transport.NewMesh(n, nil)
		res, err := Run(mesh, Config{N: n, K: k, Leader: leader, Mode: ModeLeader, Rng: r}, models, crash)
		if err != nil {
			return false
		}
		return maxAbsDiff(res.Avg, trueMean(models, allPeers(n))) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSACBroadcast10Peers(b *testing.B) {
	r := rand.New(rand.NewSource(15))
	models := randModels(r, 10, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mesh := transport.NewMesh(10, nil)
		if _, err := Run(mesh, Config{N: 10, K: 10, Mode: ModeBroadcast, Rng: r}, models, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSACLeaderKOutOfN(b *testing.B) {
	r := rand.New(rand.NewSource(16))
	models := randModels(r, 5, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mesh := transport.NewMesh(5, nil)
		if _, err := Run(mesh, Config{N: 5, K: 3, Leader: 0, Mode: ModeLeader, Rng: r}, models, nil); err != nil {
			b.Fatal(err)
		}
	}
}
