package sac

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/transport"
)

// boundedModels draws coordinates with |w[d]| ∈ [1, w]: bounded above so
// honest shares respect a ShareBound of w, bounded away from zero so a
// ×PoisonScaleFactor forgery provably leaves the range.
func boundedModels(r *rand.Rand, n, dim int, w float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		m := make([]float64, dim)
		for j := range m {
			sign := 1.0
			if r.Intn(2) == 1 {
				sign = -1
			}
			m[j] = sign * (1 + r.Float64()*(w-1))
		}
		out[i] = m
	}
	return out
}

// effectiveMean is the plaintext mean over who, with each peer's model
// replaced by what its adversary behavior actually contributes.
func effectiveMean(models [][]float64, who []int, plan AdversaryPlan) []float64 {
	dim := len(models[0])
	avg := make([]float64, dim)
	for _, i := range who {
		w := models[i]
		switch plan[i] {
		case ByzPoisonScale:
			w = attackModel(ByzPoisonScale, w)
		case ByzPoisonSignFlip:
			w = attackModel(ByzPoisonSignFlip, w)
		}
		for j, v := range w {
			avg[j] += v
		}
	}
	for j := range avg {
		avg[j] /= float64(len(who))
	}
	return avg
}

func guardedRun(t *testing.T, seed int64, n, k, leader int, plan AdversaryPlan, w float64) (*Result, [][]float64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	models := boundedModels(r, n, 6, w)
	mesh := transport.NewMesh(n, nil)
	cfg := Config{
		N: n, K: k, Leader: leader, Mode: ModeLeader, Rng: r,
		Adversary: plan, Guard: &Guard{ShareBound: w, CrossCheck: true},
	}
	res, err := Run(mesh, cfg, models, nil)
	if err != nil {
		t.Fatalf("guarded run: %v", err)
	}
	return res, models
}

func TestGuardConfigValidation(t *testing.T) {
	mesh := transport.NewMesh(3, nil)
	models := boundedModels(rand.New(rand.NewSource(1)), 3, 2, 5)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"cross-check outside leader mode", Config{N: 3, K: 3, Mode: ModeBroadcast, Guard: &Guard{ShareBound: 5, CrossCheck: true}}},
		{"adversary peer out of range", Config{N: 3, K: 3, Mode: ModeBroadcast, Adversary: AdversaryPlan{7: ByzZeroSubtotal}}},
		{"unknown behavior", Config{N: 3, K: 3, Mode: ModeBroadcast, Adversary: AdversaryPlan{0: Behavior("set-fire")}}},
	}
	for _, tc := range cases {
		if _, err := Run(mesh, tc.cfg, models, nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestPoisonScaleExcludedByRangeGuard(t *testing.T) {
	plan := AdversaryPlan{2: ByzPoisonScale}
	res, models := guardedRun(t, 11, 5, 3, 0, plan, 10)
	if len(res.Excluded) != 1 || res.Excluded[0] != 2 {
		t.Fatalf("excluded = %v, want [2]", res.Excluded)
	}
	for _, p := range res.Contributors {
		if p == 2 {
			t.Fatalf("excluded peer still among contributors %v", res.Contributors)
		}
	}
	// Post-exclusion the average is exactly the honest contributors' mean.
	if d := maxAbsDiff(res.Avg, effectiveMean(models, res.Contributors, nil)); d > 1e-9 {
		t.Fatalf("post-exclusion average off by %g", d)
	}
}

func TestSignFlipStaysInRangeAndShiftsMean(t *testing.T) {
	// A sign-flipped model is a lie the range guard cannot see (shares
	// stay in [−W, W]); the cross-check holds the protocol to exactly the
	// flipped contribution — robustness here is the bounded shift, not
	// exclusion.
	plan := AdversaryPlan{1: ByzPoisonSignFlip}
	res, models := guardedRun(t, 12, 5, 3, 0, plan, 10)
	if len(res.Excluded) != 0 || res.Mismatches != 0 || res.LeaderAccused {
		t.Fatalf("in-range lie was flagged: excluded=%v mismatches=%d accused=%v",
			res.Excluded, res.Mismatches, res.LeaderAccused)
	}
	if d := maxAbsDiff(res.Avg, effectiveMean(models, res.Contributors, plan)); d > 1e-9 {
		t.Fatalf("average off flipped-effective mean by %g", d)
	}
}

func TestInflatedSubtotalsOutvotedByMedian(t *testing.T) {
	for _, b := range []Behavior{ByzInflateSubtotal, ByzZeroSubtotal} {
		plan := AdversaryPlan{3: b}
		res, models := guardedRun(t, 13, 5, 3, 0, plan, 10)
		if res.Mismatches == 0 {
			t.Fatalf("%s: corrupted subtotal copies raised no mismatch", b)
		}
		// The adversary lies about sums, not its model: the 2-of-3 honest
		// holder majority outvotes it, leaving only summation-order noise.
		if d := maxAbsDiff(res.Avg, effectiveMean(models, res.Contributors, nil)); d > 1e-9 {
			t.Fatalf("%s: median failed to outvote liar (off by %g)", b, d)
		}
		if len(res.Excluded) != 0 {
			t.Fatalf("%s: subtotal lies must not trigger share exclusion, got %v", b, res.Excluded)
		}
	}
}

func TestCorruptSharesFlaggedAndBounded(t *testing.T) {
	plan := AdversaryPlan{4: ByzCorruptShares}
	res, models := guardedRun(t, 14, 5, 3, 0, plan, 10)
	if res.Mismatches == 0 && len(res.Excluded) == 0 {
		t.Fatal("corrupted shares raised neither mismatch nor exclusion")
	}
	// One perturbed share (≤ CorruptNoiseAmp per coordinate) can survive
	// per subtotal; the damage to the average stays below 1.
	if d := maxAbsDiff(res.Avg, effectiveMean(models, res.Contributors, nil)); d > 1 {
		t.Fatalf("corrupt-shares deviation %g exceeds bound 1", d)
	}
}

func TestEquivocationDetectedOnlyWhenGuarded(t *testing.T) {
	const n, k, leader = 5, 3, 2
	plan := AdversaryPlan{leader: ByzEquivocate}

	res, models := guardedRun(t, 15, n, k, leader, plan, 10)
	if !res.LeaderAccused {
		t.Fatal("guarded audit failed to convict the equivocating leader")
	}
	if d := maxAbsDiff(res.Avg, effectiveMean(models, res.Contributors, nil)); d > 1e-9 {
		t.Fatalf("audit returned a non-honest combination (off by %g)", d)
	}

	// Sharpness: the identical round without the guard swallows the lie.
	r := rand.New(rand.NewSource(15))
	models = boundedModels(r, n, 6, 10)
	mesh := transport.NewMesh(n, nil)
	plain, err := Run(mesh, Config{N: n, K: k, Leader: leader, Mode: ModeLeader, Rng: r, Adversary: plan}, models, nil)
	if err != nil {
		t.Fatalf("unguarded run: %v", err)
	}
	if plain.LeaderAccused {
		t.Fatal("unguarded run has no audit, yet reported an accusation")
	}
	honest := effectiveMean(models, plain.Contributors, nil)
	if d := maxAbsDiff(plain.Avg, honest); math.Abs(d-EquivocateOffset) > 1e-6 {
		t.Fatalf("unguarded equivocation shifted mean by %g, want ≈ %g", d, EquivocateOffset)
	}
}

func TestRangeGuardSurvivesAdversarialMajorityOfSenders(t *testing.T) {
	// Three of four peers send provably forged shares; the single honest
	// peer's accusations exclude them all, leaving its own model as the
	// average. Exclusion is about evidence, not majority.
	plan := AdversaryPlan{0: ByzPoisonScale, 1: ByzPoisonScale, 3: ByzPoisonScale}
	res, models := guardedRun(t, 16, 4, 2, 2, plan, 10)
	if len(res.Contributors) != 1 || res.Contributors[0] != 2 {
		t.Fatalf("contributors = %v, want [2]", res.Contributors)
	}
	if d := maxAbsDiff(res.Avg, models[2]); d > 1e-9 {
		t.Fatalf("average should be the lone honest model, off by %g", d)
	}
}

func TestByzantineRoundsAreDeterministic(t *testing.T) {
	run := func() (*Result, [][]float64) {
		return guardedRun(t, 17, 6, 4, 1, AdversaryPlan{0: ByzCorruptShares, 5: ByzInflateSubtotal}, 10)
	}
	a, _ := run()
	b, _ := run()
	if maxAbsDiff(a.Avg, b.Avg) != 0 || a.Mismatches != b.Mismatches ||
		len(a.Excluded) != len(b.Excluded) || a.LeaderAccused != b.LeaderAccused {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestNoHonestWitnessMeansNoExclusions(t *testing.T) {
	// Exclusion requires an honest receiver to witness the forged share.
	// With every peer Byzantine there is none, so the round completes
	// ungarded-style (garbage in, garbage out) rather than accusing
	// anyone — the guard never manufactures evidence.
	plan := AdversaryPlan{0: ByzPoisonScale, 1: ByzPoisonScale, 2: ByzPoisonScale, 3: ByzPoisonScale}
	r := rand.New(rand.NewSource(18))
	models := boundedModels(r, 4, 3, 10)
	mesh := transport.NewMesh(4, nil)
	cfg := Config{N: 4, K: 2, Leader: 0, Mode: ModeLeader, Rng: r,
		Adversary: plan, Guard: &Guard{ShareBound: 10, CrossCheck: true}}
	res, err := Run(mesh, cfg, models, nil)
	if err != nil {
		t.Fatalf("all-byzantine round: %v", err)
	}
	if len(res.Excluded) != 0 {
		t.Fatalf("no honest witness, yet exclusions %v", res.Excluded)
	}
}
