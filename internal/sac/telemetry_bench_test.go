package sac

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/transport"
)

// benchmarkSACRound is the telemetry overhead contract for the SAC
// handle path: full 8-peer k-out-of-n rounds over a 256-dimension
// model, and `make bench-check` fails if the instrumented round costs
// more than 5% over the nil registry (cmd/p2pfl-benchjson -pairs
// 'SACRoundLive=SACRoundNil').
//
// Measurement is built for a noisy shared machine. BOTH variants run
// inside each benchmark, interleaved round by round, so they see
// identical load; the benchmark reports only its own variant's number,
// and the minimum round (~150µs, usually inside one uncontended
// scheduler quantum) is taken — averages would absorb whatever else
// the CPU was doing.
func benchmarkSACRound(b *testing.B, live bool) {
	const roundsPerOp = 20 // per variant; both variants run every op
	r := rand.New(rand.NewSource(23))
	models := randModels(r, 8, 256)
	reg := telemetry.New()
	oneRound := func(reg *telemetry.Registry) time.Duration {
		mesh := transport.NewMesh(8, nil)
		cfg := Config{N: 8, K: 4, Leader: 0, Mode: ModeLeader, Rng: r, Telemetry: reg}
		start := time.Now()
		if _, err := Run(mesh, cfg, models, nil); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	for w := 0; w < roundsPerOp; w++ {
		oneRound(nil) // warm caches so the pair compares steady state
		oneRound(reg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var bestNil, bestLive time.Duration
	for i := 0; i < b.N; i++ {
		for j := 0; j < roundsPerOp; j++ {
			if d := oneRound(nil); bestNil == 0 || d < bestNil {
				bestNil = d
			}
			if d := oneRound(reg); bestLive == 0 || d < bestLive {
				bestLive = d
			}
		}
	}
	best := bestNil
	if live {
		best = bestLive
	}
	// ns/op = best round scaled to one variant's share of the op, so the
	// number stays comparable with a plain timed loop.
	b.ReportMetric(float64(best.Nanoseconds())*roundsPerOp, "ns/op")
}

func BenchmarkSACRoundNil(b *testing.B)  { benchmarkSACRound(b, false) }
func BenchmarkSACRoundLive(b *testing.B) { benchmarkSACRound(b, true) }
