package sac

import (
	"math/rand"
	"testing"

	"repro/internal/transport"
)

// runOnce executes one aggregation on a fresh mesh with a fixed seed.
func runOnce(t *testing.T, cfg Config, models [][]float64, crash CrashPlan, seed int64) *Result {
	t.Helper()
	cfg.Rng = rand.New(rand.NewSource(seed))
	mesh := transport.NewMesh(cfg.N, nil)
	res, err := Run(mesh, cfg, models, crash)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func requireSameResult(t *testing.T, got, want *Result) {
	t.Helper()
	if len(got.Avg) != len(want.Avg) {
		t.Fatalf("avg dim %d, want %d", len(got.Avg), len(want.Avg))
	}
	for i := range want.Avg {
		if got.Avg[i] != want.Avg[i] {
			t.Fatalf("avg[%d] = %v, want %v (not bit-identical)", i, got.Avg[i], want.Avg[i])
		}
	}
	if len(got.Contributors) != len(want.Contributors) {
		t.Fatalf("contributors %v, want %v", got.Contributors, want.Contributors)
	}
	for i := range want.Contributors {
		if got.Contributors[i] != want.Contributors[i] {
			t.Fatalf("contributors %v, want %v", got.Contributors, want.Contributors)
		}
	}
	if len(got.Recovered) != len(want.Recovered) {
		t.Fatalf("recovered %v, want %v", got.Recovered, want.Recovered)
	}
}

// TestScratchBitIdenticalAcrossRounds is the reuse contract: a Scratch
// carried across consecutive rounds — including rounds exercising the
// crash/recovery path, where subtotal vectors and receive maps are only
// partially used — must produce exactly the results of scratchless
// runs. Buffer recycling may never leak one round's values into the
// next.
func TestScratchBitIdenticalAcrossRounds(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	models := randModels(r, 8, 57)
	sc := &Scratch{}
	for _, mode := range []struct {
		name  string
		cfg   Config
		crash CrashPlan
	}{
		{"leader-kofn", Config{N: 8, K: 5, Leader: 1, Mode: ModeLeader}, nil},
		{"leader-recovery", Config{N: 8, K: 5, Leader: 1, Mode: ModeLeader}, CrashPlan{3: AfterShares, 6: AfterShares}},
		{"broadcast", Config{N: 8, K: 8, Mode: ModeBroadcast}, nil},
	} {
		t.Run(mode.name, func(t *testing.T) {
			for round := int64(0); round < 4; round++ {
				want := runOnce(t, mode.cfg, models, mode.crash, 100+round)
				withSc := mode.cfg
				withSc.Scratch = sc // same scratch across rounds AND subtests
				got := runOnce(t, withSc, models, mode.crash, 100+round)
				requireSameResult(t, got, want)
			}
		})
	}
}

// TestScratchSurvivesShapeChanges: a scratch fed rounds of different
// (N, dim) shapes re-provisions instead of corrupting.
func TestScratchSurvivesShapeChanges(t *testing.T) {
	sc := &Scratch{}
	shapes := []struct{ n, dim int }{{6, 40}, {4, 12}, {6, 40}, {3, 80}}
	for i, sh := range shapes {
		models := randModels(rand.New(rand.NewSource(int64(200+i))), sh.n, sh.dim)
		cfg := Config{N: sh.n, K: sh.n - 1, Leader: 0, Mode: ModeLeader}
		want := runOnce(t, cfg, models, nil, int64(300+i))
		cfg.Scratch = sc
		got := runOnce(t, cfg, models, nil, int64(300+i))
		requireSameResult(t, got, want)
	}
}

// TestScratchAvgDoesNotAliasScratch: Result.Avg escapes the round, so
// it must stay stable when the scratch is reused by the next round.
func TestScratchAvgDoesNotAliasScratch(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	models := randModels(r, 5, 23)
	cfg := Config{N: 5, K: 4, Leader: 0, Mode: ModeLeader, Scratch: &Scratch{}}
	first := runOnce(t, cfg, models, nil, 1)
	snapshot := make([]float64, len(first.Avg))
	copy(snapshot, first.Avg)
	runOnce(t, cfg, models, nil, 2) // stomps all scratch buffers
	for i := range snapshot {
		if first.Avg[i] != snapshot[i] {
			t.Fatal("Result.Avg mutated by scratch reuse — it aliases scratch memory")
		}
	}
}
