package sac

import (
	"math/rand"
	"testing"

	"repro/internal/transport"
)

// The SAC protocols run unchanged over real TCP sockets (the paper's
// deployment used gRPC between layers; transport.TCPMesh is this
// reproduction's socket fabric). Exact averages, exact byte accounting,
// identical fault tolerance.
func TestSACOverRealTCP(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const n, dim = 5, 64
	models := randModels(r, n, dim)

	mesh, err := transport.NewTCPMesh(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()

	res, err := Run(mesh, Config{N: n, K: n, Mode: ModeBroadcast, Rng: r}, models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Avg, trueMean(models, allPeers(n))); d > 1e-9 {
		t.Fatalf("TCP SAC average off by %v", d)
	}
	// Cost formula holds over sockets too: 2N(N−1)|w|.
	want := int64(2*n*(n-1)) * int64(8*dim)
	if got := mesh.Counter().TotalBytes(); got != want {
		t.Fatalf("bytes = %d, want %d", got, want)
	}
}

func TestFaultTolerantSACOverRealTCP(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const n, k, dim = 5, 3, 32
	models := randModels(r, n, dim)

	mesh, err := transport.NewTCPMesh(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()

	// Two peers drop after sharing — the maximum k-out-of-n tolerates.
	crash := CrashPlan{2: AfterShares, 3: AfterShares}
	res, err := Run(mesh, Config{N: n, K: k, Leader: 0, Mode: ModeLeader, Rng: r}, models, crash)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contributors) != n {
		t.Fatalf("contributors = %v", res.Contributors)
	}
	if d := maxAbsDiff(res.Avg, trueMean(models, allPeers(n))); d > 1e-9 {
		t.Fatalf("TCP fault-tolerant SAC average off by %v", d)
	}
}
