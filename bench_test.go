// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation, each driving the same
// experiment code as cmd/p2pfl-experiments at a CI-friendly scale and
// reporting the headline quantity as a custom benchmark metric.
//
//	go test -bench=. -benchmem
//
// Paper-scale runs (1000 rounds / 1000 trials) go through the CLI:
//
//	go run ./cmd/p2pfl-experiments -exp all -rounds 1000 -trials 1000
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/nn"
)

// benchParams keeps each iteration fast while exercising the full paths.
var benchParams = experiments.Params{Rounds: 15, Trials: 3, MaxN: 30, Seed: 1}

// benchRound15Peers runs full federated rounds on a 15-peer, 3-subgroup
// system with the given worker count — the end-to-end wall-clock view of
// the parallel training engine. Results are bit-identical at any worker
// count (see internal/core's TestWorkersBitIdenticalToSerial); only the
// timing changes with available cores.
func benchRound15Peers(b *testing.B, workers int) {
	b.Helper()
	cfg := core.TrainerConfig{
		Core:         core.Config{Sizes: []int{5, 5, 5}},
		Model:        func(rng *rand.Rand) (*nn.Model, error) { return nn.MLP(64, []int{32}, 4, rng), nil },
		Flat:         true,
		Data:         dataset.Tiny(4, 15*40, 60, 1),
		Dist:         dataset.IID,
		Rounds:       4,
		EvalEvery:    4,
		LearningRate: 2e-3,
		Epochs:       1,
		BatchSize:    20,
		Workers:      workers,
		Seed:         1,
	}
	var acc float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.RunTraining(cfg)
		if err != nil {
			b.Fatal(err)
		}
		acc = s.FinalAcc()
	}
	b.ReportMetric(100*acc, "final-acc-%")
}

func BenchmarkRound15PeersSerial(b *testing.B)   { benchRound15Peers(b, 1) }
func BenchmarkRound15PeersWorkers4(b *testing.B) { benchRound15Peers(b, 4) }

func BenchmarkTable1Environment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == nil {
			b.Fatal("no environment")
		}
	}
}

func BenchmarkFig6TwoLayerAccuracy(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		acc = res.Rows[0].FinalAcc // two-layer n=3, IID
	}
	b.ReportMetric(100*acc, "final-acc-%")
}

func BenchmarkFig7TwoLayerLoss(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		loss = res.Rows[0].FinalLossMA
	}
	b.ReportMetric(loss, "final-loss")
}

func BenchmarkFig8Fraction(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		// Accuracy gap between p=1 and p=0.5 under IID (paper: ~2%).
		gap = res.Rows[0].FinalAcc - res.Rows[3].FinalAcc
	}
	b.ReportMetric(100*gap, "p1-vs-p0.5-acc-gap-%")
}

func BenchmarkFig9FractionLoss(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		loss = res.Rows[3].FinalLossMA // p=0.5, IID
	}
	b.ReportMetric(loss, "final-loss")
}

func BenchmarkFig10SubgroupElection(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		mean = res.Rows[0].Stats.Mean // T=50ms setting
	}
	b.ReportMetric(mean, "recover-ms@T=50")
}

func BenchmarkFig11JoinFedAvg(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		mean = res.Rows[0].Stats.Mean
	}
	b.ReportMetric(mean, "recover-ms@T=50")
}

func BenchmarkFig12FedAvgLeaderCrash(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		mean = res.Rows[0].Stats.Mean
	}
	b.ReportMetric(mean, "recover-ms@T=50")
}

func BenchmarkFig13CostVsM(b *testing.B) {
	var m6 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Label == "m=6" {
				m6 = row.Gb
			}
		}
	}
	b.ReportMetric(m6, "Gb@m=6") // paper: 7.12 Gb
}

func BenchmarkFig14CostKN(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		var two, base float64
		for _, row := range res.Rows {
			switch row.Label {
			case "N=30 2-3 (n=3, k=2)":
				two = float64(row.Units)
			case "N=30 baseline (n=N)":
				base = float64(row.Units)
			}
		}
		reduction = base / two
	}
	b.ReportMetric(reduction, "reduction-x") // paper: 10.36x
}
